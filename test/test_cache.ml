(* Blitz_cache: rename-invariant fingerprints, the sharded LRU plan
   cache, and its engine/guard integration.

   The load-bearing property is the QCheck round-trip: for a random
   problem, a random relation permutation, any cacheable optimizer and
   any domain count, submitting the permuted problem to a session whose
   cache holds the original must return a hit whose cost is bit-for-bit
   the cached run's cost and whose plan is the cached plan under the
   permutation.  The unit tests pin down the mechanics that property
   rides on: fingerprint sensitivity (what must differ), the LRU's
   byte budget and eviction order, the shape tier's warm-start seeds,
   and the guard's clean-path-only participation.

   BLITZ_TEST_DOMAINS=N adds N to the domain axis, as in
   test_parallel.ml. *)

open Test_helpers
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Counters = Blitz_core.Counters
module Registry = Blitz_engine.Registry
module Engine = Blitz_engine.Engine
module Fingerprint = Blitz_cache.Fingerprint
module Plan_cache = Blitz_cache.Plan_cache
module Guard = Blitz_guard.Guard
module Degrade = Blitz_guard.Degrade
module Budget = Blitz_guard.Budget
module Rng = Blitz_util.Rng

let env_domains =
  match Sys.getenv_opt "BLITZ_TEST_DOMAINS" with
  | None -> []
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 && d <= 128 -> [ d ]
    | _ -> failwith (Printf.sprintf "BLITZ_TEST_DOMAINS=%S is not a domain count in [1, 128]" s))

let domain_axis = List.sort_uniq compare ([ 1; 2; 4 ] @ env_domains)

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let fingerprint ~model catalog graph =
  let s = Fingerprint.create_scratch () in
  Fingerprint.compute s ~model_digest:(Fingerprint.model_digest model) catalog graph;
  s

(* Relation [i] of the original becomes relation [perm.(i)]. *)
let permute_problem perm (p : Registry.problem) =
  let n = Catalog.n p.Registry.catalog in
  let cards = Array.make n 0.0 in
  for i = 0 to n - 1 do
    cards.(perm.(i)) <- Catalog.card p.Registry.catalog i
  done;
  let catalog = Catalog.of_cards cards in
  match p.Registry.graph with
  | None -> Registry.problem catalog
  | Some g ->
    let edges =
      List.map
        (fun (i, j, s) ->
          let i' = perm.(i) and j' = perm.(j) in
          (min i' j', max i' j', s))
        (Join_graph.edges g)
    in
    Registry.problem ~graph:(Join_graph.of_edges ~n edges) catalog

let random_perm rng n =
  let perm = Array.init n (fun i -> i) in
  Rng.shuffle rng perm;
  perm

let plan_of (o : Registry.outcome) = Option.get o.Registry.plan

(* {1 Fingerprint sensitivity} *)

let base_catalog = Catalog.of_cards [| 10.0; 250.0; 33.0; 78.0; 1200.0; 5.0 |]

let base_graph =
  Join_graph.of_edges ~n:6 [ (0, 1, 0.1); (1, 2, 0.05); (2, 3, 0.2); (3, 4, 0.01); (1, 4, 0.5) ]

let test_fingerprint_sensitivity () =
  let model = Cost_model.kdnl in
  let s0 = fingerprint ~model base_catalog (Some base_graph) in
  (* Renaming: identical full hash, identical shape hash. *)
  let perm = [| 3; 0; 5; 2; 4; 1 |] in
  let p' = permute_problem perm (Registry.problem ~graph:base_graph base_catalog) in
  let s1 = fingerprint ~model p'.Registry.catalog p'.Registry.graph in
  Alcotest.(check bool) "renaming preserves hash" true (Fingerprint.hash s0 = Fingerprint.hash s1);
  Alcotest.(check bool) "renaming preserves shape hash" true
    (Fingerprint.shape_hash s0 = Fingerprint.shape_hash s1);
  Alcotest.(check bool) "renamed scratch matches frozen original" true
    (Fingerprint.matches s1 (Fingerprint.freeze s0));
  (* A cardinality change: new exact fingerprint, same shape. *)
  let cards = Catalog.cards base_catalog in
  cards.(2) <- cards.(2) *. 1.5;
  let s2 = fingerprint ~model (Catalog.of_cards cards) (Some base_graph) in
  Alcotest.(check bool) "card change breaks hash" false (Fingerprint.hash s0 = Fingerprint.hash s2);
  Alcotest.(check bool) "card change keeps shape hash" true
    (Fingerprint.shape_hash s0 = Fingerprint.shape_hash s2);
  Alcotest.(check bool) "card change defeats matches" false
    (Fingerprint.matches s2 (Fingerprint.freeze s0));
  (* A selectivity change: both tiers miss. *)
  let g2 =
    Join_graph.of_edges ~n:6 [ (0, 1, 0.1); (1, 2, 0.06); (2, 3, 0.2); (3, 4, 0.01); (1, 4, 0.5) ]
  in
  let s3 = fingerprint ~model base_catalog (Some g2) in
  Alcotest.(check bool) "sel change breaks hash" false (Fingerprint.hash s0 = Fingerprint.hash s3);
  Alcotest.(check bool) "sel change breaks shape hash" false
    (Fingerprint.shape_hash s0 = Fingerprint.shape_hash s3);
  (* A different cost model: different digest, different fingerprint. *)
  let s4 = fingerprint ~model:Cost_model.naive base_catalog (Some base_graph) in
  Alcotest.(check bool) "model change breaks hash" false
    (Fingerprint.hash s0 = Fingerprint.hash s4);
  Alcotest.(check bool) "model change defeats matches" false
    (Fingerprint.matches s4 (Fingerprint.freeze s0))

let test_fingerprint_qcheck_invariance =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"fingerprint invariant under random renamings"
       ~print:problem_print (problem_gen ~max_n:10) (fun p ->
         let prob = Registry.problem ~graph:p.graph p.catalog in
         let rng = Rng.create ~seed:(p.seed + 77) in
         let n = Catalog.n p.catalog in
         let perm = random_perm rng n in
         let prob' = permute_problem perm prob in
         let s0 = fingerprint ~model:p.model p.catalog (Some p.graph) in
         let s1 = fingerprint ~model:p.model prob'.Registry.catalog prob'.Registry.graph in
         Fingerprint.hash s0 = Fingerprint.hash s1
         && Fingerprint.shape_hash s0 = Fingerprint.shape_hash s1
         && Fingerprint.matches s1 (Fingerprint.freeze s0)
         && Fingerprint.matches s0 (Fingerprint.freeze s1)))

let test_canonize_rebase_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"rebase . canonize = identity on plans"
       ~print:problem_print (problem_gen ~max_n:10) (fun p ->
         let s = fingerprint ~model:p.model p.catalog (Some p.graph) in
         let plan =
           plan_of
             (Registry.optimize
                (Registry.ctx ~counters:(Counters.create ()) p.model)
                (Registry.problem ~graph:p.graph p.catalog))
         in
         Plan.equal plan (Fingerprint.rebase_plan s (Fingerprint.canonize_plan s plan))))

(* {1 The tentpole property: cached hits under renaming, across
   optimizers and domain counts} *)

let cacheable_optimizers = [ "exact"; "thresholded"; "dpsize" ]

let test_rebased_hits_bit_identical =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:12 ~name:"renamed resubmission = rebased hit, bit-identical"
       ~print:problem_print (problem_gen ~max_n:8) (fun p ->
         let prob = Registry.problem ~graph:p.graph p.catalog in
         let rng = Rng.create ~seed:(p.seed + 13) in
         let n = Catalog.n p.catalog in
         let perm = random_perm rng n in
         let prob' = permute_problem perm prob in
         List.for_all
           (fun num_domains ->
             List.for_all
               (fun optimizer ->
                 let cache = Plan_cache.create () in
                 Engine.with_session ~model:p.model ~num_domains ~cache (fun session ->
                     let cold = Engine.optimize ~optimizer session prob in
                     let cold_plan = plan_of cold in
                     let before = Plan_cache.stats cache in
                     let hit = Engine.optimize ~optimizer session prob' in
                     let after = Plan_cache.stats cache in
                     after.Plan_cache.hits = before.Plan_cache.hits + 1
                     && same_float cold.Registry.cost hit.Registry.cost
                     && Plan.equal
                          (Plan.normalize (Plan.map_leaves (fun i -> perm.(i)) cold_plan))
                          (Plan.normalize (plan_of hit))
                     (* The rebased tree must price identically under the
                        renamed instance's own statistics. *)
                     && Blitz_util.Float_more.approx_equal ~rel:1e-9 hit.Registry.cost
                          (Plan.cost p.model prob'.Registry.catalog
                             (Option.value ~default:(Join_graph.no_predicates ~n)
                                prob'.Registry.graph)
                             (plan_of hit))))
               cacheable_optimizers)
           domain_axis))

let test_shared_cache_across_sessions () =
  (* A cache outlives and spans sessions: populate at one domain count,
     hit at another (the rank-parallel optimizer is bit-identical, so
     the transfer is sound). *)
  let model = Cost_model.kdnl in
  let prob = Registry.problem ~graph:base_graph base_catalog in
  let cache = Plan_cache.create () in
  let cold =
    Engine.with_session ~model ~num_domains:1 ~cache (fun s -> Engine.optimize s prob)
  in
  let hit =
    Engine.with_session ~model ~num_domains:2 ~cache (fun s -> Engine.optimize s prob)
  in
  Alcotest.(check bool) "cost bit-identical across sessions" true
    (same_float cold.Registry.cost hit.Registry.cost);
  Alcotest.(check bool) "plan identical" true (Plan.equal (plan_of cold) (plan_of hit));
  Alcotest.(check int) "one insertion" 1 (Plan_cache.stats cache).Plan_cache.insertions;
  Alcotest.(check int) "one hit" 1 (Plan_cache.stats cache).Plan_cache.hits

let test_inexact_optimizers_bypass () =
  (* The greedy heuristic's registry entry does not promise exactness,
     so its runs must neither populate nor consult the cache. *)
  let model = Cost_model.kdnl in
  let prob = Registry.problem ~graph:base_graph base_catalog in
  let cache = Plan_cache.create () in
  Engine.with_session ~model ~cache (fun s ->
      ignore (Engine.optimize ~optimizer:"greedy" s prob);
      ignore (Engine.optimize ~optimizer:"greedy" s prob));
  let st = Plan_cache.stats cache in
  Alcotest.(check int) "no insertions" 0 st.Plan_cache.insertions;
  Alcotest.(check int) "no lookups" 0 (st.Plan_cache.hits + st.Plan_cache.misses)

let test_explicit_threshold_bypasses () =
  (* An explicit threshold makes the outcome caller-dependent: never
     cached, never answered from the cache. *)
  let model = Cost_model.kdnl in
  let prob = Registry.problem ~graph:base_graph base_catalog in
  let cache = Plan_cache.create () in
  Engine.with_session ~model ~cache (fun s ->
      ignore (Engine.optimize ~optimizer:"thresholded" ~threshold:1e12 s prob);
      ignore (Engine.optimize ~optimizer:"thresholded" ~threshold:1e12 s prob));
  let st = Plan_cache.stats cache in
  Alcotest.(check int) "no insertions" 0 st.Plan_cache.insertions;
  Alcotest.(check int) "no lookups" 0 (st.Plan_cache.hits + st.Plan_cache.misses)

(* {1 LRU mechanics} *)

(* Distinct single-shard problems: index [k] scales the cardinalities,
   so every problem has its own exact fingerprint but shares nothing
   with the LRU bookkeeping under test. *)
let lru_problem k =
  let cards = Array.init 6 (fun i -> float_of_int ((k * 17) + (i * 3) + 2)) in
  (Catalog.of_cards cards, base_graph)

let balanced_plan n =
  let rec build lo hi =
    if lo = hi then Plan.Leaf lo else Plan.Join (build lo ((lo + hi) / 2), build (((lo + hi) / 2) + 1) hi)
  in
  build 0 (n - 1)

let test_lru_eviction () =
  let model = Cost_model.kdnl in
  let cache = Plan_cache.create ~shards:1 ~max_bytes:2048 () in
  let store k =
    let catalog, graph = lru_problem k in
    let s = fingerprint ~model catalog (Some graph) in
    Plan_cache.store cache s ~optimizer:"exact" ~plan:(balanced_plan 6) ~cost:(float_of_int k)
      ~passes:1 ~final_threshold:infinity
  in
  let find k =
    let catalog, graph = lru_problem k in
    let s = fingerprint ~model catalog (Some graph) in
    Plan_cache.find cache s ~optimizer:"exact"
  in
  for k = 0 to 39 do
    store k
  done;
  let st = Plan_cache.stats cache in
  Alcotest.(check bool) "stayed under the byte budget" true (st.Plan_cache.bytes <= 2048);
  Alcotest.(check bool) "evictions happened" true (st.Plan_cache.evictions > 0);
  Alcotest.(check int) "entries = insertions - evictions" st.Plan_cache.entries
    (st.Plan_cache.insertions - st.Plan_cache.evictions);
  Alcotest.(check bool) "oldest entry evicted" true (find 0 = None);
  (match find 39 with
  | Some h -> Alcotest.(check (float 0.0)) "newest entry resident" 39.0 h.Plan_cache.cost
  | None -> Alcotest.fail "newest entry missing");
  Plan_cache.clear cache;
  let st = Plan_cache.stats cache in
  Alcotest.(check int) "clear drops entries" 0 st.Plan_cache.entries;
  Alcotest.(check int) "clear drops bytes" 0 st.Plan_cache.bytes

let test_lru_recency_refresh () =
  (* Touching an old entry protects it: evictions take the true LRU. *)
  let model = Cost_model.kdnl in
  let cache = Plan_cache.create ~shards:1 ~max_bytes:2048 () in
  let scratch_of k =
    let catalog, graph = lru_problem k in
    fingerprint ~model catalog (Some graph)
  in
  let store k =
    Plan_cache.store cache (scratch_of k) ~optimizer:"exact" ~plan:(balanced_plan 6)
      ~cost:(float_of_int k) ~passes:1 ~final_threshold:infinity
  in
  store 0;
  store 1;
  (* Fill until the next insertion must evict; keep 0 warm throughout. *)
  let k = ref 2 in
  while (Plan_cache.stats cache).Plan_cache.evictions = 0 do
    ignore (Plan_cache.find cache (scratch_of 0) ~optimizer:"exact");
    store !k;
    incr k
  done;
  Alcotest.(check bool) "refreshed entry survives" true
    (Plan_cache.find cache (scratch_of 0) ~optimizer:"exact" <> None);
  Alcotest.(check bool) "stale entry evicted" true
    (Plan_cache.find cache (scratch_of 1) ~optimizer:"exact" = None)

let test_duplicate_store_is_refresh () =
  let model = Cost_model.kdnl in
  let cache = Plan_cache.create () in
  let s = fingerprint ~model base_catalog (Some base_graph) in
  let store () =
    Plan_cache.store cache s ~optimizer:"exact" ~plan:(balanced_plan 6) ~cost:1.0 ~passes:1
      ~final_threshold:infinity
  in
  store ();
  store ();
  let st = Plan_cache.stats cache in
  Alcotest.(check int) "one insertion" 1 st.Plan_cache.insertions;
  Alcotest.(check int) "one entry" 1 st.Plan_cache.entries

let test_optimizer_keys_are_distinct () =
  (* The same problem cached under "exact" must not answer a
     "thresholded" lookup: per-optimizer bit-identity. *)
  let model = Cost_model.kdnl in
  let cache = Plan_cache.create () in
  let s = fingerprint ~model base_catalog (Some base_graph) in
  Plan_cache.store cache s ~optimizer:"exact" ~plan:(balanced_plan 6) ~cost:1.0 ~passes:1
    ~final_threshold:infinity;
  Alcotest.(check bool) "exact finds it" true
    (Plan_cache.find cache s ~optimizer:"exact" <> None);
  Alcotest.(check bool) "thresholded does not" true
    (Plan_cache.find cache s ~optimizer:"thresholded" = None)

(* {1 The shape tier} *)

let test_shape_threshold () =
  let model = Cost_model.kdnl in
  let cache = Plan_cache.create () in
  let s = fingerprint ~model base_catalog (Some base_graph) in
  Alcotest.(check bool) "empty cache has no seed" true (Plan_cache.shape_threshold cache s = None);
  Plan_cache.store cache s ~optimizer:"thresholded" ~plan:(balanced_plan 6) ~cost:42.0 ~passes:1
    ~final_threshold:infinity;
  (* Same selectivity structure, different cardinalities: exact miss,
     shape hit, seed = best cost x warm_slack. *)
  let cards = Array.map (fun c -> c *. 1.03) (Catalog.cards base_catalog) in
  let s' = fingerprint ~model (Catalog.of_cards cards) (Some base_graph) in
  Alcotest.(check bool) "exact tier misses" true
    (Plan_cache.find cache s' ~optimizer:"thresholded" = None);
  (match Plan_cache.shape_threshold cache s' with
  | Some seed ->
    Alcotest.(check bool) "seed = cost x slack" true
      (same_float seed (42.0 *. Plan_cache.warm_slack cache))
  | None -> Alcotest.fail "shape tier missed");
  Alcotest.(check int) "shape hit counted" 1 (Plan_cache.stats cache).Plan_cache.shape_hits

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

let test_engine_warm_start () =
  (* Through the engine: a thresholded run on a shape-hit miss is
     warm-started from the banded ensemble (the stored plan re-costed
     under the new statistics bounds the first pass), notes it, and
     still returns the bit-identical optimum (the Section 6.4
     escalation-plus-rescue contract). *)
  let model = Cost_model.kdnl in
  let rng = Rng.create ~seed:99 in
  let catalog = random_catalog rng ~n:8 ~lo:10.0 ~hi:1e4 in
  let graph = random_graph rng ~n:8 ~edge_prob:0.5 ~sel_lo:1e-3 ~sel_hi:1.0 in
  let base = Registry.problem ~graph catalog in
  let jittered =
    Registry.problem ~graph
      (Catalog.of_cards (Array.map (fun c -> c *. 1.02) (Catalog.cards catalog)))
  in
  let cache = Plan_cache.create () in
  let warm =
    Engine.with_session ~model ~cache (fun s ->
        ignore (Engine.optimize ~optimizer:"thresholded" s base);
        Engine.optimize ~optimizer:"thresholded" s jittered)
  in
  let cold = Engine.with_session ~model (fun s -> Engine.optimize ~optimizer:"thresholded" s jittered) in
  (match warm.Registry.note with
  | Some note ->
    Alcotest.(check bool) "outcome notes the banded warm-start" true
      (contains note "plan cache: banded warm-start")
  | None -> Alcotest.fail "warm-started run carries no note");
  Alcotest.(check int) "one band seed served" 1 (Plan_cache.stats cache).Plan_cache.band_hits;
  Alcotest.(check bool) "warm-started cost bit-identical to cold" true
    (same_float warm.Registry.cost cold.Registry.cost);
  Alcotest.(check bool) "warm-started plan identical to cold" true
    (Plan.equal (plan_of warm) (plan_of cold))

(* {1 The banded ensemble} *)

let test_banded_seed_roundtrip () =
  (* Store under one catalog, seed a shape-equal problem with different
     cardinalities: the ensemble returns a structurally valid plan for
     the caller's labeling plus the STORING cost — which the consumer
     must re-cost, and the engine does. *)
  let model = Cost_model.kdnl in
  let cache = Plan_cache.create () in
  let s = fingerprint ~model base_catalog (Some base_graph) in
  Alcotest.(check bool) "empty ensemble has no seed" true (Plan_cache.shape_seed cache s = None);
  let stored_plan = balanced_plan 6 in
  Plan_cache.store cache s ~optimizer:"thresholded"
    ~plan:stored_plan ~cost:42.0 ~passes:1 ~final_threshold:infinity;
  let cards = Array.map (fun c -> c *. 1.7) (Catalog.cards base_catalog) in
  let jittered = Catalog.of_cards cards in
  let s' = fingerprint ~model jittered (Some base_graph) in
  (match Plan_cache.shape_seed cache s' with
  | None -> Alcotest.fail "banded ensemble missed a shape-equal problem"
  | Some (plan, cost) ->
    Alcotest.(check bool) "stored cost returned verbatim" true (same_float cost 42.0);
    Alcotest.(check bool) "seed plan valid for the caller" true
      (match Plan.validate ~n:6 plan with Ok () -> true | Error _ -> false);
    (* Same scratch labeling as the store: the seed is the stored plan. *)
    (match Plan_cache.shape_seed cache s with
    | Some (p, _) -> Alcotest.(check bool) "identity rebase returns the plan" true (Plan.equal p stored_plan)
    | None -> Alcotest.fail "identity lookup missed"));
  Alcotest.(check int) "band hits counted" 2 (Plan_cache.stats cache).Plan_cache.band_hits;
  Plan_cache.clear cache;
  Alcotest.(check bool) "clear drops the ensemble" true (Plan_cache.shape_seed cache s = None)

let test_banded_keeps_cheapest_per_band () =
  (* Two stores of the same shape and band: the ensemble keeps the
     cheaper member. *)
  let model = Cost_model.kdnl in
  let cache = Plan_cache.create () in
  let s = fingerprint ~model base_catalog (Some base_graph) in
  Plan_cache.store cache s ~optimizer:"exact" ~plan:(balanced_plan 6) ~cost:50.0 ~passes:1
    ~final_threshold:infinity;
  let cards = Array.map (fun c -> c *. 3.1) (Catalog.cards base_catalog) in
  let s' = fingerprint ~model (Catalog.of_cards cards) (Some base_graph) in
  Plan_cache.store cache s' ~optimizer:"exact" ~plan:(balanced_plan 6) ~cost:20.0 ~passes:1
    ~final_threshold:infinity;
  (match Plan_cache.shape_seed cache s with
  | Some (_, cost) -> Alcotest.(check bool) "cheaper member wins" true (same_float cost 20.0)
  | None -> Alcotest.fail "ensemble missed");
  (* A worse later store must not displace it. *)
  Plan_cache.store cache s ~optimizer:"dpsize" ~plan:(balanced_plan 6) ~cost:90.0 ~passes:1
    ~final_threshold:infinity;
  match Plan_cache.shape_seed cache s with
  | Some (_, cost) -> Alcotest.(check bool) "worse store ignored" true (same_float cost 20.0)
  | None -> Alcotest.fail "ensemble missed after refresh"

let test_banded_warm_start_qcheck =
  (* The headline safety property, ISSUE acceptance: a banded warm
     start never changes the answer.  Random problem, random
     cardinality jitter (shape-preserving), any domain count: the
     warm-started thresholded run is bit-identical to a cold session
     on the jittered problem. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:15 ~name:"banded warm-starts are bit-identical to cold runs"
       ~print:problem_print (problem_gen ~max_n:8) (fun p ->
         let rng = Rng.create ~seed:(p.seed + 31) in
         let jitter = Array.map (fun c -> c *. Rng.log_uniform rng ~lo:0.2 ~hi:5.0)
             (Catalog.cards p.catalog) in
         let base = Registry.problem ~graph:p.graph p.catalog in
         let jittered = Registry.problem ~graph:p.graph (Catalog.of_cards jitter) in
         List.for_all
           (fun num_domains ->
             let cache = Plan_cache.create () in
             let warm =
               Engine.with_session ~model:p.model ~num_domains ~cache (fun s ->
                   ignore (Engine.optimize ~optimizer:"thresholded" s base);
                   Engine.optimize ~optimizer:"thresholded" s jittered)
             in
             let cold =
               Engine.with_session ~model:p.model ~num_domains (fun s ->
                   Engine.optimize ~optimizer:"thresholded" s jittered)
             in
             same_float warm.Registry.cost cold.Registry.cost
             && Plan.equal (plan_of warm) (plan_of cold))
           domain_axis))

(* {1 Guard and budget integration} *)

let test_guard_serves_from_cache () =
  let model = Cost_model.kdnl in
  let cache = Plan_cache.create () in
  Engine.with_session ~model ~cache (fun session ->
      let first = Result.get_ok (Guard.optimize ~session model base_catalog base_graph) in
      let second = Result.get_ok (Guard.optimize ~session model base_catalog base_graph) in
      Alcotest.(check bool) "first run computed" false first.Guard.from_cache;
      Alcotest.(check bool) "second run served from cache" true second.Guard.from_cache;
      Alcotest.(check bool) "same cost" true (same_float first.Guard.cost second.Guard.cost);
      Alcotest.(check bool) "same plan" true (Plan.equal first.Guard.plan second.Guard.plan))

let test_guard_bypasses_on_repairs () =
  (* A repaired input (selectivity clamped to 1) is not the query the
     caller submitted: the guard must neither store nor serve it. *)
  let model = Cost_model.kdnl in
  let cache = Plan_cache.create () in
  let relations = [ ("A", 10.0); ("B", 20.0); ("C", 30.0) ] in
  let edges = [ (0, 1, 0.5); (1, 2, 1.5) ] in
  Engine.with_session ~model ~cache (fun session ->
      let run () =
        Result.get_ok (Guard.optimize_input ~session model ~relations ~edges ())
      in
      let first = run () in
      let second = run () in
      Alcotest.(check bool) "input was repaired" true (first.Guard.repairs <> []);
      Alcotest.(check bool) "first not from cache" false first.Guard.from_cache;
      Alcotest.(check bool) "second not from cache" false second.Guard.from_cache);
  let st = Plan_cache.stats cache in
  Alcotest.(check int) "nothing stored" 0 st.Plan_cache.insertions;
  Alcotest.(check int) "nothing looked up" 0 (st.Plan_cache.hits + st.Plan_cache.misses)

let test_eligibility_charges_cache_bytes () =
  (* Cache residency shares the table memory ceiling: the same budget
     that admits the exact tier with an empty cache refuses it when the
     cache already holds the headroom. *)
  let n = Catalog.n base_catalog in
  let table = Budget.table_bytes ~n () in
  let budget = Budget.create ~max_table_bytes:(table + 1024) () in
  Budget.start budget;
  Alcotest.(check bool) "fits with empty cache" true
    (Degrade.eligibility ~budget Degrade.Exact base_catalog base_graph = None);
  (match Degrade.eligibility ~cache_bytes:4096 ~budget Degrade.Exact base_catalog base_graph with
  | Some (Degrade.Memory _) -> ()
  | Some _ -> Alcotest.fail "expected a memory skip"
  | None -> Alcotest.fail "cache bytes were not charged against the ceiling")

let test_sessions_without_cache_opt_out () =
  let model = Cost_model.kdnl in
  Engine.with_session ~model (fun s ->
      Alcotest.(check bool) "no cache attached" true (Engine.cache s = None);
      Alcotest.(check bool) "cache_find is None" true
        (Engine.cache_find s ~optimizer:"exact" (Registry.problem ~graph:base_graph base_catalog)
        = None))

let suite =
  [
    Alcotest.test_case "fingerprint sensitivity" `Quick test_fingerprint_sensitivity;
    test_fingerprint_qcheck_invariance;
    test_canonize_rebase_roundtrip;
    test_rebased_hits_bit_identical;
    Alcotest.test_case "cache shared across sessions" `Quick test_shared_cache_across_sessions;
    Alcotest.test_case "inexact optimizers bypass" `Quick test_inexact_optimizers_bypass;
    Alcotest.test_case "explicit threshold bypasses" `Quick test_explicit_threshold_bypasses;
    Alcotest.test_case "LRU eviction under byte budget" `Quick test_lru_eviction;
    Alcotest.test_case "LRU recency refresh" `Quick test_lru_recency_refresh;
    Alcotest.test_case "duplicate store refreshes" `Quick test_duplicate_store_is_refresh;
    Alcotest.test_case "per-optimizer keys" `Quick test_optimizer_keys_are_distinct;
    Alcotest.test_case "shape-tier threshold seeds" `Quick test_shape_threshold;
    Alcotest.test_case "engine warm-start" `Quick test_engine_warm_start;
    Alcotest.test_case "banded ensemble round-trip" `Quick test_banded_seed_roundtrip;
    Alcotest.test_case "banded ensemble keeps the cheapest member" `Quick
      test_banded_keeps_cheapest_per_band;
    test_banded_warm_start_qcheck;
    Alcotest.test_case "guard serves clean-path hits" `Quick test_guard_serves_from_cache;
    Alcotest.test_case "guard bypasses on repairs" `Quick test_guard_bypasses_on_repairs;
    Alcotest.test_case "eligibility charges cache bytes" `Quick test_eligibility_charges_cache_bytes;
    Alcotest.test_case "cacheless sessions opt out" `Quick test_sessions_without_cache_opt_out;
  ]

(* SQL front end: lexer, parser, binder. *)

module Lexer = Blitz_sql.Lexer
module Parser = Blitz_sql.Parser
module Ast = Blitz_sql.Ast
module Binder = Blitz_sql.Binder
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph

let check_float = Test_helpers.check_float

let script =
  "CREATE TABLE orders (CARDINALITY 150000);\n\
   CREATE TABLE lineitem (CARDINALITY 600000);\n\
   CREATE TABLE customer (CARDINALITY 15000);\n\
   -- the query under test\n\
   SELECT * FROM orders o, lineitem l, customer c\n\
   WHERE o.okey = l.okey {0.0000066}\n\
   AND o.ckey = c.ckey;\n"

let test_lexer_tokens () =
  match Lexer.tokenize "SELECT * FROM t WHERE a.x = b.y {0.5};" with
  | Error e -> Alcotest.failf "lex error: %s" e.Lexer.message
  | Ok tokens ->
    Alcotest.(check int) "token count" 16 (List.length tokens);
    (match tokens with
    | { Lexer.token = Lexer.Kw_select; pos } :: _ ->
      Alcotest.(check int) "line" 1 pos.Ast.line;
      Alcotest.(check int) "column" 1 pos.Ast.column
    | _ -> Alcotest.fail "expected SELECT first")

let test_lexer_positions_and_comments () =
  match Lexer.tokenize "-- comment line\n  SELECT" with
  | Error e -> Alcotest.failf "lex error: %s" e.Lexer.message
  | Ok [ { Lexer.token = Lexer.Kw_select; pos } ] ->
    Alcotest.(check int) "line 2" 2 pos.Ast.line;
    Alcotest.(check int) "column 3" 3 pos.Ast.column
  | Ok _ -> Alcotest.fail "expected exactly one token"

let test_lexer_errors () =
  (match Lexer.tokenize "SELECT @" with
  | Error e ->
    Alcotest.(check string) "message" "unexpected character '@'" e.Lexer.message;
    Alcotest.(check int) "column" 8 e.Lexer.error_pos.Ast.column
  | Ok _ -> Alcotest.fail "expected error");
  match Lexer.tokenize "1.2.3" with
  | Error e -> Alcotest.(check string) "bad number" "malformed number \"1.2.3\"" e.Lexer.message
  | Ok _ -> Alcotest.fail "expected error"

let test_parse_script () =
  match Parser.parse_script script with
  | Error e -> Alcotest.failf "parse error: %s" e.Parser.message
  | Ok statements -> (
    Alcotest.(check int) "statement count" 4 (List.length statements);
    match List.nth statements 3 with
    | Ast.Select { from; where; _ } ->
      Alcotest.(check int) "from items" 3 (List.length from);
      Alcotest.(check (list string)) "aliases" [ "o"; "l"; "c" ]
        (List.map Ast.binding_name from);
      Alcotest.(check int) "predicates" 2 (List.length where);
      let p1 = List.hd where in
      Alcotest.(check (option (float 1e-12))) "annotated selectivity" (Some 0.0000066)
        p1.Ast.selectivity;
      let p2 = List.nth where 1 in
      Alcotest.(check (option (float 1e-12))) "default selectivity" None p2.Ast.selectivity
    | Ast.Create_table _ -> Alcotest.fail "expected SELECT")

let test_parse_errors () =
  let expect_error text fragment =
    match Parser.parse_script text with
    | Ok _ -> Alcotest.failf "expected parse failure for %S" text
    | Error e ->
      let msg = Format.asprintf "%a" Parser.pp_error e in
      let contains =
        let nl = String.length fragment and dl = String.length msg in
        let rec scan i = i + nl <= dl && (String.sub msg i nl = fragment || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) (Printf.sprintf "%S mentions %S" msg fragment) true contains
  in
  expect_error "CREATE TABLE t CARDINALITY 5;" "'('";
  expect_error "SELECT * FROM;" "identifier";
  expect_error "SELECT * FROM a WHERE a.x = ;" "identifier";
  expect_error "CREATE TABLE t (CARDINALITY 0);" "cardinality must be positive";
  expect_error "SELECT * FROM a WHERE a.x = b.y {0};" "selectivity must be positive";
  expect_error "SELECT * FROM a" "unexpected end of input";
  expect_error "DROP TABLE t;" "expected CREATE or SELECT"

let test_parse_select_convenience () =
  match Parser.parse_select "SELECT * FROM a, b WHERE a.x = b.x" with
  | Error e -> Alcotest.failf "parse error: %s" e.Parser.message
  | Ok select -> Alcotest.(check int) "2 tables" 2 (List.length select.Ast.from)

let test_bind_script () =
  match Binder.parse_and_bind script with
  | Error e -> Alcotest.fail e
  | Ok [ q ] ->
    Alcotest.(check int) "3 relations" 3 (Catalog.n q.Binder.catalog);
    Alcotest.(check (array string)) "binding names" [| "o"; "l"; "c" |]
      (Catalog.names q.Binder.catalog);
    check_float "orders card" 150000.0 (Catalog.card q.Binder.catalog 0);
    check_float "annotated sel" 0.0000066 (Join_graph.selectivity q.Binder.graph 0 1);
    (* default: 1 / max(150000, 15000) *)
    check_float ~rel:1e-12 "default sel" (1.0 /. 150000.0)
      (Join_graph.selectivity q.Binder.graph 0 2);
    Alcotest.(check int) "2 edges" 2 (Join_graph.edge_count q.Binder.graph)
  | Ok qs -> Alcotest.failf "expected one query, got %d" (List.length qs)

let test_bind_self_join_via_alias () =
  let text =
    "CREATE TABLE person (CARDINALITY 1000);\n\
     SELECT * FROM person p1, person p2 WHERE p1.boss = p2.id;"
  in
  match Binder.parse_and_bind text with
  | Error e -> Alcotest.fail e
  | Ok [ q ] ->
    Alcotest.(check int) "two relations" 2 (Catalog.n q.Binder.catalog);
    check_float "both cards" (Catalog.card q.Binder.catalog 0) (Catalog.card q.Binder.catalog 1)
  | Ok _ -> Alcotest.fail "expected one query"

let test_bind_conjoined_predicates () =
  let text =
    "CREATE TABLE a (CARDINALITY 100);\n\
     CREATE TABLE b (CARDINALITY 100);\n\
     SELECT * FROM a, b WHERE a.x = b.x {0.1} AND a.y = b.y {0.2};"
  in
  match Binder.parse_and_bind text with
  | Error e -> Alcotest.fail e
  | Ok [ q ] ->
    check_float ~rel:1e-12 "selectivities multiply" 0.02 (Join_graph.selectivity q.Binder.graph 0 1)
  | Ok _ -> Alcotest.fail "expected one query"

let test_bind_errors () =
  let expect_error text fragment =
    match Binder.parse_and_bind text with
    | Ok _ -> Alcotest.failf "expected binding failure for %S" text
    | Error msg ->
      let contains =
        let nl = String.length fragment and dl = String.length msg in
        let rec scan i = i + nl <= dl && (String.sub msg i nl = fragment || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) (Printf.sprintf "%S mentions %S" msg fragment) true contains
  in
  expect_error "SELECT * FROM nowhere;" "unknown table";
  expect_error "CREATE TABLE t (CARDINALITY 5);\nSELECT * FROM t, t;" "duplicate relation name";
  expect_error "CREATE TABLE t (CARDINALITY 5);\nSELECT * FROM t WHERE t.a = u.b;"
    "not in the FROM clause";
  expect_error "CREATE TABLE t (CARDINALITY 5);\nSELECT * FROM t WHERE t.a = t.b;"
    "relates \"t\" to itself";
  expect_error "CREATE TABLE t (CARDINALITY 5);\nCREATE TABLE t (CARDINALITY 6);"
    "already defined";
  expect_error "CREATE TABLE a (CARDINALITY 5);\nCREATE TABLE b (CARDINALITY 5);\n\
                SELECT * FROM a, b WHERE a.x = b.x {1.5};" "exceeds 1"

(* Statistics the parser's syntactic checks let through (overflowing
   literals) must surface as positioned binding errors — never as an
   untyped [Invalid_argument] escaping from catalog or graph
   construction. *)
let test_bind_bad_statistics () =
  let expect_error text fragment =
    match Binder.parse_and_bind text with
    | Ok _ -> Alcotest.failf "expected binding failure for %S" text
    | Error msg ->
      let contains =
        let nl = String.length fragment and dl = String.length msg in
        let rec scan i = i + nl <= dl && (String.sub msg i nl = fragment || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) (Printf.sprintf "%S mentions %S" msg fragment) true contains
    | exception e -> Alcotest.failf "binder raised %s for %S" (Printexc.to_string e) text
  in
  (* 1e400 overflows to infinity: positive, so the parser admits it. *)
  expect_error "CREATE TABLE t (CARDINALITY 1e400);\nSELECT * FROM t;" "invalid cardinality inf";
  expect_error
    "CREATE TABLE a (CARDINALITY 5);\nCREATE TABLE b (CARDINALITY 5);\n\
     SELECT * FROM a, b WHERE a.x = b.x {1e400};"
    "exceeds 1"

let test_order_by () =
  let text =
    "CREATE TABLE a (CARDINALITY 100);\n\
     CREATE TABLE b (CARDINALITY 200);\n\
     CREATE TABLE c (CARDINALITY 300);\n\
     SELECT * FROM a, b, c WHERE a.x = b.x {0.1} AND b.y = c.y {0.2} ORDER BY c.y;"
  in
  match Binder.parse_and_bind text with
  | Error e -> Alcotest.fail e
  | Ok [ q ] -> (
    match q.Binder.required_order with
    | None -> Alcotest.fail "expected a required order"
    | Some e ->
      (* Edge ids index Join_graph.edges (sorted i<j): (0,1) then (1,2);
         ORDER BY c.y names the b-c predicate. *)
      Alcotest.(check int) "edge id" 1 e;
      let module O = Blitz_core.Blitzsplit_orders in
      let r = O.optimize ~required_order:e q.Binder.catalog q.Binder.graph in
      Alcotest.(check (option int)) "plan delivers it" (Some e) (O.order_of r.O.plan))
  | Ok _ -> Alcotest.fail "expected one query"

let test_order_by_errors () =
  let expect_error text fragment =
    match Binder.parse_and_bind text with
    | Ok _ -> Alcotest.failf "expected binding failure for %S" text
    | Error msg ->
      let contains =
        let nl = String.length fragment and dl = String.length msg in
        let rec scan i = i + nl <= dl && (String.sub msg i nl = fragment || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) (Printf.sprintf "%S mentions %S" msg fragment) true contains
  in
  expect_error
    "CREATE TABLE a (CARDINALITY 5);\nCREATE TABLE b (CARDINALITY 5);\n\
     SELECT * FROM a, b WHERE a.x = b.x ORDER BY a.nonjoin;"
    "only join attributes";
  expect_error
    "CREATE TABLE a (CARDINALITY 5);\nSELECT * FROM a ORDER BY z.col;"
    "not in the FROM clause"

(* End-to-end: bind then optimize. *)
let test_bind_and_optimize () =
  match Binder.parse_and_bind script with
  | Error e -> Alcotest.fail e
  | Ok [ q ] ->
    let module Blitzsplit = Blitz_core.Blitzsplit in
    let r = Blitzsplit.optimize_join Blitz_cost.Cost_model.kdnl q.Binder.catalog q.Binder.graph in
    Alcotest.(check bool) "feasible" true (Blitzsplit.feasible r);
    let plan = Blitzsplit.best_plan_exn r in
    Alcotest.(check bool) "valid" true
      (Result.is_ok (Blitz_plan.Plan.validate ~n:3 plan))
  | Ok _ -> Alcotest.fail "expected one query"

let prop_parser_never_crashes =
  QCheck2.Test.make ~count:500 ~name:"parser totality on arbitrary strings"
    QCheck2.Gen.(string_size ~gen:printable (int_bound 60))
    (fun text ->
      match Parser.parse_script text with Ok _ | Error _ -> true)

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer positions and comments" `Quick test_lexer_positions_and_comments;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parse a script" `Quick test_parse_script;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse_select" `Quick test_parse_select_convenience;
    Alcotest.test_case "bind a script" `Quick test_bind_script;
    Alcotest.test_case "self-join via alias" `Quick test_bind_self_join_via_alias;
    Alcotest.test_case "conjoined predicates multiply" `Quick test_bind_conjoined_predicates;
    Alcotest.test_case "binder errors" `Quick test_bind_errors;
    Alcotest.test_case "binder rejects bad statistics with positions" `Quick
      test_bind_bad_statistics;
    Alcotest.test_case "ORDER BY binds to an edge" `Quick test_order_by;
    Alcotest.test_case "ORDER BY errors" `Quick test_order_by_errors;
    Alcotest.test_case "bind and optimize end-to-end" `Quick test_bind_and_optimize;
    QCheck_alcotest.to_alcotest prop_parser_never_crashes;
  ]

The serving layer end to end, over a real socket: `blitz serve` on an
ephemeral port, driven closed-loop by `blitz query`.  One worker keeps
optimize responses in arrival order; --max-requests 3 makes teardown
deterministic (the server exits after the third optimize/explain
response, counting quota rejections).  Only the elapsed_ms field is
wall-clock dependent, so only it is scrubbed.

  $ blitz serve --port 0 --port-file port --workers 1 \
  >   --tenants 'acme:burst=1,table-mb=64' --max-requests 3 > server.log 2>&1 &
  $ for i in $(seq 150); do test -s port && break; sleep 0.1; done
  $ scrub() { sed -E 's/"elapsed_ms":[0-9.e+-]+/"elapsed_ms":_/'; }

The request mix: a health probe, a malformed line (typed parse_error,
connection survives), an optimize for tenant acme (burst=1, so its
second request is a typed quota_exhausted — not a hang, not a drop), a
stats snapshot, and a generated-workload optimize for the default
tenant, whose response carries the winning tier and full attempt
provenance:

  $ cat > requests << 'EOF'
  > {"blitz":1,"id":1,"method":"health"}
  > this is not json
  > {"blitz":1,"id":2,"method":"optimize","tenant":"acme","params":{"relations":[["part",200],["supplier",10],["lineitem",6000]],"edges":[[0,2,0.005],[1,2,0.1]]}}
  > {"blitz":1,"id":3,"method":"optimize","tenant":"acme","params":{"relations":[["part",200],["supplier",10],["lineitem",6000]],"edges":[[0,2,0.005],[1,2,0.1]]}}
  > {"blitz":1,"id":4,"method":"stats"}
  > {"blitz":1,"id":5,"method":"optimize","params":{"n":6,"topology":"star","mean_card":100}}
  > EOF

  $ blitz query --port $(cat port) < requests | scrub
  {"blitz":1,"id":1,"ok":true,"result":{"status":"ok","protocol":1,"workers":1,"queue_depth":0,"tenants":["acme","default"]}}
  {"blitz":1,"id":null,"ok":false,"error":{"code":"parse_error","message":"serve: Json.of_string: invalid literal at offset 0"}}
  {"blitz":1,"id":2,"ok":true,"result":{"plan":"(part x (supplier x lineitem))","cost":2548.27272727,"tier":"exact","from_cache":false,"shed":false,"repairs":0,"attempts":[{"tier":"exact","status":"produced"}],"elapsed_ms":_}}
  {"blitz":1,"id":3,"ok":false,"error":{"code":"quota_exhausted","message":"serve: tenant \"acme\" is over its request quota"}}
  {"blitz":1,"id":4,"ok":true,"result":{"served":2,"queue_depth":0,"workers":1,"tenants":{"acme":{"served":1,"shed":0,"quota_rejected":1}},"cache":{"hits":0,"misses":2,"insertions":1,"entries":1,"bytes":418}}}
  {"blitz":1,"id":5,"ok":true,"result":{"plan":"(R0 x (R1 x (R2 x (R3 x (R4 x R5)))))","cost":155.050505051,"tier":"exact","from_cache":false,"shed":false,"repairs":0,"attempts":[{"tier":"exact","status":"produced"}],"elapsed_ms":_}}
  $ wait

  $ sed -E 's/:[0-9]+ /:PORT /' server.log
  serving on 127.0.0.1:PORT (1 worker(s), 2 tenant(s))

Cardinality-error robustness, end to end.

The regret harness plans on a seeded noise-perturbed catalog and judges
every choice under the true statistics; the sweep is deterministic in
its arguments, so the mean-regret tables are stable output:

  $ blitz regret -n 9 -o exact,greedy,simpli-squared --levels 0,1 --seeds 2
  regret vs true optimum (n=9, kdnl, lognormal noise; 2 seeds/cell)
  
  chain:
    optimizer               level 0       level 1     
    exact                   1             60.57       
    greedy                  1.003         16.12       
    simpli-squared          134           134         
  
  cycle+3:
    optimizer               level 0       level 1     
    exact                   1             28.96       
    greedy                  1.818         11.85       
    simpli-squared          484           484         
  
  star:
    optimizer               level 0       level 1     
    exact                   1             1.351       
    greedy                  1.205         1.358       
    simpli-squared          1             1           
  
  clique:
    optimizer               level 0       level 1     
    exact                   1             17.27       
    greedy                  219.3         17.79       
    simpli-squared          1.001         1.001       
  
  

A scrambled catalog — every cardinality replaced with NaN, infinities
and negative garbage — cannot be costed; the sanitizer fabricates
substitutes and the guarded driver degrades straight to the
estimate-free simpli-squared tier (timings stripped as in guard.t):

  $ strip() { sed -E 's/ in [0-9.]+ms/ in Xms/; s/ after [0-9.]+ms/ after Xms/' | grep -v '^time:'; }

  $ blitz optimize -n 6 --topology star --scramble-catalog | strip
  query:      n=6 star k0 mu=100 v=0.00
  model:      kdnl (guarded driver, scrambled catalog)
  fault:      every cardinality in the catalog replaced with garbage
  repairs:    6 (statistics fabricated by the sanitizer)
  plan:       (((((R5 x R0) x R1) x R2) x R3) x R4)
  tier:       simpli-squared
  provenance:
    simpli-squared: produced plan (cost 0.103132) in Xms

The corruption is deterministic per seed, so a failing seed is a
reproducible bug report:

  $ blitz optimize -n 6 --topology star --scramble-catalog --corrupt-seed 9 | strip
  query:      n=6 star k0 mu=100 v=0.00
  model:      kdnl (guarded driver, scrambled catalog)
  fault:      every cardinality in the catalog replaced with garbage
  repairs:    6 (statistics fabricated by the sanitizer)
  plan:       (((((R5 x R0) x R1) x R2) x R3) x R4)
  tier:       simpli-squared
  provenance:
    simpli-squared: produced plan (cost 0.103132) in Xms

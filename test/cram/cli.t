The CLI front end, end to end.  Timing lines are stripped (they vary).

Generate an appendix-style workload as SQL:

  $ blitz workload -n 4 --topology star --mean-card 100 --variability 0
  -- n=4 star k0 mu=100 v=0.00
  CREATE TABLE R0 (CARDINALITY 100);
  CREATE TABLE R1 (CARDINALITY 100);
  CREATE TABLE R2 (CARDINALITY 100);
  CREATE TABLE R3 (CARDINALITY 100);
  SELECT * FROM R0, R1, R2, R3
  WHERE R0.key3 = R3.key0 {0.01}
    AND R1.key3 = R3.key1 {0.01}
    AND R2.key3 = R3.key2 {0.01}
  ;

The generated script round-trips through the optimizer:

  $ blitz workload -n 4 --topology star --mean-card 100 --variability 0 > star.sql
  $ blitz optimize --sql star.sql --model k0 --dump-table | grep -v '^time:'
  query:      star.sql
  model:      k0
  plan:       (R0 x (R1 x (R2 x R3)))
  cost:       300
  cardinality:100
  shape:      bushy, 0 cartesian product(s)
  
  Relation Set      Cardinality  Best LHS     Cost
  ----------------  -----------  --------  -------
  {R0}                      100      none        0
  {R1}                      100      none        0
  {R2}                      100      none        0
  {R3}                      100      none        0
  {R0, R1}                10000      {R0}    10000
  {R0, R2}                10000      {R0}    10000
  {R0, R3}                  100      {R0}      100
  {R1, R2}                10000      {R1}    10000
  {R1, R3}                  100      {R1}      100
  {R2, R3}                  100      {R2}      100
  {R0, R1, R2}          1000000      {R0}  1010000
  {R0, R1, R3}              100      {R0}      200
  {R0, R2, R3}              100      {R0}      200
  {R1, R2, R3}              100      {R1}      200
  {R0, R1, R2, R3}          100      {R0}      300

Direct SQL with explicit statistics and an execution check:

  $ cat > tiny.sql <<SQL
  > CREATE TABLE a (CARDINALITY 40);
  > CREATE TABLE b (CARDINALITY 30);
  > CREATE TABLE c (CARDINALITY 20);
  > SELECT * FROM a, b, c WHERE a.x = b.x {0.05} AND b.y = c.y {0.1};
  > SQL
  $ blitz optimize --sql tiny.sql --model ksm | grep -v '^time:'
  query:      tiny.sql
  model:      ksm
  plan:       (a x (b x c))
  cost:       705.166
  cardinality:120
  shape:      bushy, 0 cartesian product(s)

Errors are reported with positions:

  $ cat > bad.sql <<SQL
  > SELECT * FROM nowhere;
  > SQL
  $ blitz optimize --sql bad.sql
  blitz: binding error: unknown table "nowhere" (line 1, column 15)
  [124]

Mutually exclusive problem sources are rejected:

  $ blitz optimize --sql tiny.sql -n 5
  blitz: --sql and -n are mutually exclusive
  [124]

Physical optimization with ORDER BY (the Section 6.5 extension):

  $ cat > orderby.sql <<SQL
  > CREATE TABLE big (CARDINALITY 19278);
  > CREATE TABLE small (CARDINALITY 383);
  > CREATE TABLE mid (CARDINALITY 16615);
  > SELECT * FROM big, small, mid
  > WHERE small.k = mid.k {0.0183}
  > ORDER BY small.k;
  > SQL
  $ blitz optimize --sql orderby.sql --physical
  query:      orderby.sql
  physical:   MERGE[e0](NL(sort[e0](small), big), sort[e0](mid))
  cost:       9.04131e+06
  order:      sorted on edge 0
  order-blind: 1.25807e+08 (min(ksm, kdnl), no reuse)

Large queries route to the hybrid:

  $ blitz optimize -n 30 --topology chain --mean-card 1000
  blitz: 30 relations exceed the 24-relation DP table; use --hybrid for large queries
  [1]
  $ blitz optimize -n 26 --topology star --mean-card 100 --hybrid | grep -vE '^(time|plan):'
  query:      n=26 star k0 mu=100 v=0.00
  model:      kdnl (hybrid search)
  cost:       775.253 (not guaranteed optimal)

Instrumentation counters match the Section 3.3 analysis:

  $ blitz counters -n 8 --topology clique --mean-card 1 --model ksm
  query: n=8 clique k0 mu=1 v=0.00   model: ksm
  
  subsets processed:   247
  split-loop iters:    6050
  operand sums:        6050
  kappa'' evaluations: 6050
  improvements:        247
  threshold skips:     0
  infeasible subsets:  0
  passes:              1
  
  analytic bounds (Section 3.3): loop iters = 6050, kappa'' in [710, 6561]

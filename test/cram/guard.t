The resilient driver, end to end.  Wall-clock figures vary run to run,
so provenance timings and the time: line are stripped.

With --degrade and no budget, the guard is exact blitzsplit plus a
provenance trail:

  $ strip() { sed -E 's/ in [0-9.]+ms/ in Xms/; s/ after [0-9.]+ms/ after Xms/' | grep -v '^time:'; }

  $ blitz optimize -n 6 --model k0 --degrade | strip
  query:      n=6 chain k0 mu=100 v=0.00
  model:      k0 (guarded driver)
  plan:       ((R1 x (R0 x R3)) x (R4 x (R2 x R5)))
  cost:       276.429
  tier:       exact
  provenance:
    exact: produced plan (cost 276.429) in Xms

A 1 ms deadline on an 18-relation clique interrupts the exact search
mid-table; the budgeted tiers are skipped and greedy — the terminal,
deadline-exempt tier — answers, with the abort recorded:

  $ blitz optimize -n 18 --topology clique --model k0 --deadline-ms 1 | strip
  query:      n=18 clique k0 mu=100 v=0.00
  model:      k0 (guarded driver)
  plan:       (((((R8 x R9) x (R6 x R7)) x ((R12 x R13) x (R10 x R11))) x (((R4 x R5) x (R2 x R3)) x (R0 x R1))) x ((R16 x R17) x (R14 x R15)))
  cost:       6.53757e+09 (not guaranteed optimal)
  tier:       greedy
  provenance:
    exact: aborted (deadline) after Xms
    thresholded: skipped (deadline expired)
    dpccp: skipped (deadline expired)
    hybrid: skipped (deadline expired)
    ikkbz: skipped (deadline expired)
    greedy: produced plan (cost 6.53757e+09) in Xms

A memory ceiling below the 10 MiB DP-table footprint skips both DP
tiers before any allocation; the hybrid's windowed search takes over:

  $ blitz optimize -n 18 --model k0 --max-table-mb 1 | strip
  query:      n=18 chain k0 mu=100 v=0.00
  model:      k0 (guarded driver)
  plan:       (((((((((R8 x R17) x R16) x R7) x R15) x R6) x R14) x R5) x R13) x ((((((((R0 x R9) x R1) x R10) x R2) x R11) x R3) x R12) x R4))
  cost:       751.767 (not guaranteed optimal)
  tier:       hybrid
  provenance:
    exact: skipped (DP table needs 14680064 B, ceiling is 1048576 B)
    thresholded: skipped (DP table needs 14680064 B, ceiling is 1048576 B)
    dpccp: skipped (DP table needs 14680064 B, ceiling is 1048576 B)
    hybrid: produced plan (cost 751.767) in Xms

Nonsense budgets are rejected up front:

  $ blitz optimize -n 12 --max-table-mb 0
  blitz: Budget.create: memory ceiling 0 B is not positive
  [1]

The observability surface: --metrics, --trace and the explain
subcommand.  Timing lines and histograms vary run to run, so the
Prometheus dump is filtered to deterministic counter families.

A thresholded run publishes its pass and skip counts (two passes: the
initial threshold misses the optimum, the relaxation pass finds it):

  $ blitz optimize -n 6 --topology chain --mean-card 100 --variability 0 --threshold 1 --metrics > metrics.txt 2>&1
  $ grep -E '^blitz_threshold' metrics.txt
  blitz_threshold_passes_total 2
  blitz_threshold_rescue_passes_total 0
  blitz_threshold_skipped_subsets_total 66
  $ grep -E '^blitz_registry_calls_total\{optimizer="thresholded"\}' metrics.txt
  blitz_registry_calls_total{optimizer="thresholded"} 1

--metrics=FILE writes the dump instead of printing it; a .json suffix
selects the JSON exposition:

  $ blitz optimize -n 4 --topology star --mean-card 100 --variability 0 --metrics=m.json | grep '^metrics:'
  metrics:    wrote m.json
  $ grep -c '"type": "counter"' m.json > /dev/null && echo json-dump-ok
  json-dump-ok

--trace FILE exports the span ring as a Chrome-trace JSON array; the
same thresholded query records the registry dispatch and both passes:

  $ blitz optimize -n 6 --topology chain --mean-card 100 --variability 0 --threshold 1 --trace t.json | grep '^trace:'
  trace:      wrote t.json (3 span(s))
  $ grep -o '"name": "[a-z._]*"' t.json | sort | uniq -c | sed 's/^ *//'
  1 "name": "registry.optimize"
  2 "name": "threshold.pass"

explain prints the plan tree with per-subset cardinality and cumulative
cost, the split-loop counters, and the counter/gauge deltas of the run:

  $ blitz explain -n 4 --topology star --mean-card 100 --variability 0 --model k0 | grep -v '^time:' | sed 's/^kernel:     \(.*\), ~[0-9.]* ns\/split over \([0-9]* pass\(es\)\?\)$/kernel:     \1, ~N ns\/split over \2/'
  query:      n=4 star k0 mu=100 v=0.00
  model:      k0
  optimizer:  exact (exact)
  plan:       (R0 x (R1 x (R2 x R3)))
  cost:       300
  
  plan tree (per-subset cardinality / cumulative cost):
    join {R0, R1, R2, R3}  card=100  cost=300
      scan R0  card=100
      join {R1, R2, R3}  card=100  cost=200
        scan R1  card=100
        join {R2, R3}  card=100  cost=100
          scan R2  card=100
          scan R3  card=100
  
  split-loop counters (this run):
    subsets processed:   11
    split-loop iters:    50
    operand sums:        11
    kappa'' evaluations: 0
    improvements:        11
    threshold skips:     0
    infeasible subsets:  0
    passes:              1
  
  kernel:     zero, ~N ns/split over 1 pass
  
  metrics (this run):
    blitz_arena_acquires 1
    blitz_arena_grows 1
    blitz_arena_resident_bytes 896
    blitz_engine_optimize_seconds count=1
    blitz_engine_plan_cost count=1
    blitz_engine_queries_total 1
    blitz_registry_calls_total{optimizer=exact} 1
    blitz_split_loop_ns_per_iter count=1
    blitz_split_loop_ns_per_subset count=1

explain rejects optimizers the query is not eligible for:

  $ blitz explain -n 5 --topology clique -o ikkbz
  blitz: ikkbz is not eligible here: join graph is not a tree
  [1]

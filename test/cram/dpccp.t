The connectivity-pruned DP (dpccp) and the DPconv bottleneck driver,
end to end through the CLI.  Timing lines are stripped (they vary).

An explicit optimizer selection on a sparse query — the product-free
plan space contains the optimum here, so the plan matches blitzsplit's:

  $ blitz optimize -n 10 --topology chain --mean-card 100 --optimizer dpccp | grep -v '^time:'
  query:      n=10 chain k0 mu=100 v=0.00
  model:      kdnl
  plan:       (((((R0 x R5) x R1) x R6) x R2) x ((R3 x ((R4 x R9) x R8)) x R7))
  cost:       137.729
  cardinality:100
  shape:      bushy, 0 cartesian product(s)

Past the 24-relation dense-table ceiling the sparse backend takes over:
n = 30 on a chain is (n^3 - n)/6 = 4495 csg-cmp pairs, far beyond
blitzsplit's reach (the plain exact optimizer refuses outright):

  $ blitz optimize -n 30 --topology chain --mean-card 1000
  blitz: 30 relations exceed the 24-relation DP table; use --hybrid for large queries
  [1]
  $ blitz optimize -n 30 --topology chain --mean-card 1000 --optimizer dpccp | grep -vE '^(time|plan):'
  query:      n=30 chain k0 mu=1000 v=0.00
  model:      kdnl
  cost:       3652.93
  cardinality:1000
  shape:      bushy, 0 cartesian product(s)

DPconv minimizes the bottleneck intermediate (C_max) by subset-sum
convolution; the registry re-costs its plan under the session model:

  $ blitz optimize -n 8 --topology star --mean-card 100 --optimizer dpconv | grep -v '^time:'
  query:      n=8 star k0 mu=100 v=0.00
  model:      kdnl
  plan:       (R0 x (R1 x (R2 x (R3 x (R4 x (R5 x (R6 x R7)))))))
  cost:       217.071
  cardinality:100
  shape:      bushy, 0 cartesian product(s)

explain surfaces the csg-cmp pair count (the work metric that replaces
split-loop iterations) and the per-pair rate histogram:

  $ blitz explain -n 8 --topology chain --mean-card 100 --optimizer dpccp | grep -E 'ccp pairs|ns_per_pair|note:'
  note:       84 csg-cmp pairs over 36 connected sets (dense backend)
    ccp pairs:           84
    blitz_dpccp_ns_per_pair count=1

The comparison sweep picks both methods up from the registry (time
column dropped — it varies):

  $ blitz compare -n 8 --topology chain --mean-card 100 | awk '$1 == "dpccp" || $1 == "dpconv" { print $1, $3 }'
  dpccp 1.0000
  dpconv 1.0000

Cartesian products are outside dpccp's plan space, so a disconnected
join graph is refused upfront — and handled by dpconv, whose space
includes products:

  $ cat > disc.sql <<SQL
  > CREATE TABLE a (CARDINALITY 40);
  > CREATE TABLE b (CARDINALITY 30);
  > CREATE TABLE c (CARDINALITY 20);
  > SELECT * FROM a, b, c WHERE a.x = b.x {0.05};
  > SQL
  $ blitz optimize --sql disc.sql --optimizer dpccp
  blitz: dpccp is not eligible here: join graph is disconnected (method excludes Cartesian products)
  [1]
  $ blitz optimize --sql disc.sql --optimizer dpconv | grep -E '^(plan|shape):'
  plan:       (a x (b x c))
  shape:      bushy, 1 cartesian product(s)

The optimizer registry's capability table, pinned.  ARCHITECTURE.md's
optimizer inventory is written against this dump (and README's count
quotes it), so documentation drift fails here instead of rotting:
regenerate the docs from `blitz optimizers`, then promote.

  $ blitz optimizers
  name                   max_n exact cache tree  conn par  dexempt sfree mw 
  exact                  24    yes   yes   -     -    yes  -       -     yes
  thresholded            24    yes   yes   -     -    yes  -       -     yes
  hybrid                 -     -     -     -     -    -    -       -     -  
  ikkbz                  -     -     -     yes   -    -    -       -     -  
  greedy                 -     -     -     -     -    -    yes     -     -  
  simpli-squared         -     -     -     -     -    -    yes     yes   -  
  dpsize                 24    yes   yes   -     -    -    -       -     -  
  dpsize-no-products     24    -     -     -     yes  -    -       -     -  
  leftdeep               24    -     -     -     -    -    -       -     -  
  leftdeep-deferred      24    -     -     -     -    -    -       -     -  
  iterative-improvement  -     -     -     -     -    -    -       -     -  
  simulated-annealing    -     -     -     -     -    -    -       -     -  
  random-probe           -     -     -     -     -    -    -       -     -  
  volcano                24    yes   yes   -     -    -    -       -     -  
  dpccp                  62    -     -     -     yes  -    -       -     yes
  dpconv                 20    -     -     -     -    -    -       -     -  
  bruteforce             10    yes   yes   -     -    -    -       -     -  
  
  17 optimizers registered

The plan-cache surface: --cache / --cache-mb / --no-cache / --repeat.
A cache lives for one invocation, so --repeat is what makes hits
observable: every submission after the first of an identical query is
answered from the cache.  Time lines vary run to run and are filtered.

Plain path: 4 submissions = 1 miss + insertion, then 3 hits, and the
plan is byte-identical to an uncached run:

  $ blitz optimize -n 6 --topology chain --mean-card 100 --variability 0.5 --cache --repeat 4 | grep -v '^time:'
  query:      n=6 chain k0 mu=100 v=0.50
  model:      kdnl
  plan:       ((R1 x (R0 x R3)) x (R4 x (R2 x R5)))
  cost:       84.6153
  cardinality:100
  shape:      bushy, 0 cartesian product(s)
  cache:      3 hit(s) (0 rebased), 1 miss(es), 1 insertion(s), 0 shape seed(s), 0 band seed(s)

  $ blitz optimize -n 6 --topology chain --mean-card 100 --variability 0.5 | grep -E '^plan:|^cost:'
  plan:       ((R1 x (R0 x R3)) x (R4 x (R2 x R5)))
  cost:       84.6153

--no-cache wins over --cache (and --cache-mb): no cache line at all:

  $ blitz optimize -n 6 --topology chain --mean-card 100 --variability 0.5 --no-cache --cache-mb 8 --repeat 2 | grep -c '^cache:'
  0
  [1]

The guarded driver consults the same session cache on its clean path;
the second and third submissions skip the cascade entirely and the tier
line says so (the first run's two misses are the exact and thresholded
tier lookups):

  $ strip() { sed -E 's/ in [0-9.]+ms/ in Xms/' | grep -v '^time:'; }

  $ blitz optimize -n 6 --topology chain --mean-card 100 --variability 0.5 --degrade --cache --repeat 3 | strip
  query:      n=6 chain k0 mu=100 v=0.50
  model:      kdnl (guarded driver)
  plan:       ((R1 x (R0 x R3)) x (R4 x (R2 x R5)))
  cost:       84.6153
  tier:       exact (plan served from session cache)
  provenance:
    exact: produced plan (cost 84.6153) in Xms
  cache:      2 hit(s) (0 rebased), 2 miss(es), 1 insertion(s), 0 shape seed(s), 0 band seed(s)

explain shows cache provenance twice over: the outcome's note names the
hit, and the metric deltas carry the exact hit/miss/insertion counts:

  $ blitz explain -n 5 --topology chain --mean-card 100 --variability 0.5 --cache --repeat 3 > explain.txt 2>&1
  $ grep -E '^note:|^cache:' explain.txt
  note:       plan cache: hit
  cache:      2 hit(s) (0 rebased), 1 miss(es), 1 insertion(s), 0 shape seed(s), 0 band seed(s)
  $ grep -E '^  blitz_cache' explain.txt
    blitz_cache_hits_total 2
    blitz_cache_insertions_total 1
    blitz_cache_lookup_seconds count=3
    blitz_cache_misses_total 1

--repeat must be positive:

  $ blitz optimize -n 4 --repeat 0 2>&1
  blitz: --repeat 0 must be at least 1
  [1]

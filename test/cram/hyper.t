Hybrid bushy+multiway planning through the CLI.  Timing lines are
stripped (they vary).

On a clique the AGM-costed n-ary candidate beats every binary split:
the winning plan is a single multiway node over all eight relations.

  $ blitz optimize -n 8 --topology clique --variability 0.5 --multiway | grep -v '^time:'
  query:      n=8 clique k0 mu=100 v=0.50
  model:      kdnl
  plan:       [R0 x R1 x R2 x R3 x R4 x R5 x R6 x R7]
  cost:       3063.72
  cardinality:100
  shape:      bushy, 0 cartesian product(s)
  multiway:   1 n-ary node(s) in the winning plan

The same query without the flag takes the best pure-binary plan at more
than twice the estimated cost:

  $ blitz optimize -n 8 --topology clique --variability 0.5 | grep -v '^time:'
  query:      n=8 clique k0 mu=100 v=0.50
  model:      kdnl
  plan:       (((((R2 x R3) x ((R0 x R1) x R4)) x R5) x R6) x R7)
  cost:       7277.03
  cardinality:100
  shape:      bushy, 0 cartesian product(s)

explain renders the multiway node with its fractional edge-cover
weights and the AGM bound the cost model charged:

  $ blitz explain -n 8 --topology clique --variability 0.5 --multiway | sed -n '/^plan tree/,/^$/p'
  plan tree (per-subset cardinality / cumulative cost):
    multiway {R0, R1, R2, R3, R4, R5, R6, R7}  card=100  agm=1.86384e+14  cost=3063.72
      cover: {R0,R1}=1 {R2,R3}=1 {R5,R6}=0.5 {R5,R7}=0.5 {R6,R7}=0.5
      scan R0  card=10
      scan R1  card=19.307
      scan R2  card=37.2759
      scan R3  card=71.9686
      scan R4  card=138.95
      scan R5  card=268.27
      scan R6  card=517.947
      scan R7  card=1000
  

Acyclic topologies are structurally unaffected: the flag changes
nothing on a chain — same cost, zero n-ary nodes.

  $ blitz optimize -n 10 --topology chain --variability 0.5 --multiway | grep -v '^time:'
  query:      n=10 chain k0 mu=100 v=0.50
  model:      kdnl
  plan:       ((R2 x ((R1 x (R0 x R5)) x R6)) x (R7 x (R3 x (R8 x (R4 x R9)))))
  cost:       139.17
  cardinality:100
  shape:      bushy, 0 cartesian product(s)
  multiway:   0 n-ary node(s) in the winning plan

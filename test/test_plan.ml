(* Plan trees: structure, validation, costing, annotation, printing. *)

open Test_helpers

let names = Catalog.names abcd_catalog
let fig3 = figure3_graph ~sab:0.1 ~sac:0.2 ~sbc:0.3 ~sad:0.4
let check_float = Test_helpers.check_float

let bushy = Plan.(Join (Join (Leaf 0, Leaf 3), Join (Leaf 1, Leaf 2)))
let vine = Plan.(Join (Join (Join (Leaf 0, Leaf 1), Leaf 2), Leaf 3))

let test_structure () =
  Alcotest.(check int) "relations" 0b1111 (Plan.relations bushy);
  Alcotest.(check int) "leaf_count" 4 (Plan.leaf_count bushy);
  Alcotest.(check int) "join_count" 3 (Plan.join_count bushy);
  Alcotest.(check int) "depth bushy" 2 (Plan.depth bushy);
  Alcotest.(check int) "depth vine" 3 (Plan.depth vine);
  Alcotest.(check bool) "bushy not left-deep" false (Plan.is_left_deep bushy);
  Alcotest.(check bool) "vine left-deep" true (Plan.is_left_deep vine);
  Alcotest.(check bool) "leaf left-deep" true (Plan.is_left_deep (Plan.Leaf 2))

let test_validate () =
  Alcotest.(check bool) "valid" true (Result.is_ok (Plan.validate ~n:4 bushy));
  Alcotest.(check bool) "out of range" true
    (Result.is_error (Plan.validate ~n:3 bushy));
  let dup = Plan.(Join (Leaf 0, Leaf 0)) in
  Alcotest.(check bool) "duplicate leaf" true (Result.is_error (Plan.validate ~n:4 dup));
  Alcotest.check_raises "relations raises on duplicates"
    (Invalid_argument "Plan.relations: relation 0 appears twice") (fun () ->
      ignore (Plan.relations dup))

let test_normalize () =
  let flipped = Plan.(Join (Join (Leaf 2, Leaf 1), Join (Leaf 3, Leaf 0))) in
  let normalized = Plan.normalize flipped in
  Alcotest.(check bool) "normalized form" true
    (Plan.equal normalized Plan.(Join (Join (Leaf 0, Leaf 3), Join (Leaf 1, Leaf 2))));
  Alcotest.(check bool) "idempotent" true (Plan.equal normalized (Plan.normalize normalized))

let test_enumerate_counts () =
  List.iter
    (fun n ->
      let plans = Plan.enumerate (Relset.full n) in
      Alcotest.(check int)
        (Printf.sprintf "plan count n=%d" n)
        (int_of_float (Plan.count_plans n))
        (List.length plans);
      (* All distinct after normalization, all valid. *)
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun p ->
          Alcotest.(check bool) "valid" true (Result.is_ok (Plan.validate ~n p));
          let key = Plan.to_compact_string p in
          Alcotest.(check bool) "distinct" false (Hashtbl.mem tbl key);
          Hashtbl.add tbl key ())
        plans)
    [ 1; 2; 3; 4; 5 ]

let test_count_plans_values () =
  check_float "count 1" 1.0 (Plan.count_plans 1);
  check_float "count 2" 1.0 (Plan.count_plans 2);
  check_float "count 3" 3.0 (Plan.count_plans 3);
  check_float "count 4" 15.0 (Plan.count_plans 4);
  check_float "count 5" 105.0 (Plan.count_plans 5);
  check_float "count 10" 34459425.0 (Plan.count_plans 10)

let test_cost_reference () =
  (* Table 1 by hand: the bushy optimum costs 241000 under kappa_0 with
     no predicates. *)
  let empty = Join_graph.no_predicates ~n:4 in
  check_float "bushy product cost" 241000.0
    (Plan.cost Cost_model.naive abcd_catalog empty bushy);
  check_float "cardinality" 240000.0 (Plan.cardinality abcd_catalog empty bushy);
  (* With Figure 3 predicates, cardinality = 240000 * 0.1*0.2*0.3*0.4. *)
  check_float "cardinality with predicates" (240000.0 *. 0.0024)
    (Plan.cardinality abcd_catalog fig3 bushy)

let test_cartesian_join_count () =
  (* In bushy = (A x D) x (B x C) every join is covered by an edge of
     Figure 3 (AD, BC, and AB/AC across the top). *)
  Alcotest.(check int) "no products in bushy" 0 (Plan.cartesian_join_count fig3 bushy);
  (* (B x D) has no predicate: exactly one Cartesian product. *)
  Alcotest.(check int) "one product" 1
    (Plan.cartesian_join_count fig3 Plan.(Join (Join (Leaf 1, Leaf 3), Join (Leaf 0, Leaf 2))));
  Alcotest.(check int) "no products in vine" 0 (Plan.cartesian_join_count fig3 vine);
  let empty = Join_graph.no_predicates ~n:4 in
  Alcotest.(check int) "all products without predicates" 3
    (Plan.cartesian_join_count empty bushy)

let test_annotate () =
  let algorithms = [ ("sm", Cost_model.sort_merge); ("dnl", Cost_model.kdnl) ] in
  let annotated = Plan.annotate ~algorithms abcd_catalog fig3 bushy in
  (* Total = sum of per-join minima; recompute by hand via Plan.cost of
     each model is NOT comparable (different models per join), so check
     internal consistency instead. *)
  let rec collect = function
    | Plan.Ann_leaf _ -> []
    | Plan.Ann_join j -> ((j.algorithm, j.join_cost) :: collect j.lhs) @ collect j.rhs
    | Plan.Ann_multiway m ->
      ("multiway-hash", m.join_cost) :: List.concat_map collect m.inputs
  in
  let joins = collect annotated in
  Alcotest.(check int) "three joins annotated" 3 (List.length joins);
  List.iter
    (fun (alg, cost) ->
      Alcotest.(check bool) "algorithm named" true (alg = "sm" || alg = "dnl");
      Alcotest.(check bool) "cost nonnegative" true (cost >= 0.0))
    joins;
  let total = Plan.annotated_cost annotated in
  (* The min-of cost model must agree with the annotation total. *)
  let min_model = Cost_model.min_of Cost_model.sort_merge Cost_model.kdnl in
  check_float "matches min-of model" (Plan.cost min_model abcd_catalog fig3 bushy) total;
  Alcotest.check_raises "empty algorithms" (Invalid_argument "Plan.annotate: empty algorithm list")
    (fun () -> ignore (Plan.annotate ~algorithms:[] abcd_catalog fig3 bushy))

let test_printing_roundtrip () =
  Alcotest.(check string) "compact" "((A x D) x (B x C))" (Plan.to_compact_string ~names bushy);
  Alcotest.(check string) "leaf" "C" (Plan.to_compact_string ~names (Plan.Leaf 2));
  (match Plan.of_compact_string ~names "((A x D) x (B x C))" with
  | Ok p -> Alcotest.(check bool) "parse round-trip" true (Plan.equal p bushy)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "unknown name" true
    (Result.is_error (Plan.of_compact_string ~names "(A x Z)"));
  Alcotest.(check bool) "trailing garbage" true
    (Result.is_error (Plan.of_compact_string ~names "(A x B) C"));
  Alcotest.(check bool) "unbalanced" true (Result.is_error (Plan.of_compact_string ~names "(A x B"))

let test_map_leaves () =
  let mapped = Plan.map_leaves (fun i -> 3 - i) bushy in
  Alcotest.(check bool) "leaves remapped" true
    (Plan.equal mapped Plan.(Join (Join (Leaf 3, Leaf 0), Join (Leaf 2, Leaf 1))))

let prop_roundtrip_printing =
  QCheck2.Test.make ~count:300 ~name:"compact printing round-trips on random plans"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 2 + Rng.int rng 8 in
      let plan = Blitz_baselines.Transform.random_bushy rng (Relset.full n) in
      let nm = Array.init n (Printf.sprintf "T%d") in
      match Plan.of_compact_string ~names:nm (Plan.to_compact_string ~names:nm plan) with
      | Ok p -> Plan.equal p plan
      | Error _ -> false)

let prop_cost_commutative_models =
  QCheck2.Test.make ~count:200
    ~name:"commuting a join preserves cost under the symmetric paper models"
    ~print:problem_print (problem_gen ~max_n:7)
    (fun p ->
      let rng = Rng.create ~seed:(p.seed + 3) in
      let plan = Blitz_baselines.Transform.random_bushy rng (Relset.full (Catalog.n p.catalog)) in
      let rec flip_all = function
        | Plan.Leaf _ as l -> l
        | Plan.Join (l, r) -> Plan.Join (flip_all r, flip_all l)
        | Plan.Multiway { inputs; cover; agm } ->
          Plan.Multiway { inputs = List.rev_map flip_all inputs; cover; agm }
      in
      Blitz_util.Float_more.approx_equal ~rel:1e-9
        (Plan.cost p.model p.catalog p.graph plan)
        (Plan.cost p.model p.catalog p.graph (flip_all plan)))

let suite =
  [
    Alcotest.test_case "structure metrics" `Quick test_structure;
    Alcotest.test_case "validation" `Quick test_validate;
    Alcotest.test_case "normalization" `Quick test_normalize;
    Alcotest.test_case "enumeration counts (2n-3)!!" `Quick test_enumerate_counts;
    Alcotest.test_case "count_plans values" `Quick test_count_plans_values;
    Alcotest.test_case "reference costing" `Quick test_cost_reference;
    Alcotest.test_case "cartesian join counting" `Quick test_cartesian_join_count;
    Alcotest.test_case "algorithm annotation (Section 6.5)" `Quick test_annotate;
    Alcotest.test_case "printing and parsing" `Quick test_printing_roundtrip;
    Alcotest.test_case "map_leaves" `Quick test_map_leaves;
    QCheck_alcotest.to_alcotest prop_roundtrip_printing;
    QCheck_alcotest.to_alcotest prop_cost_commutative_models;
  ]

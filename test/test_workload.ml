(* The appendix benchmark-workload generator. *)

open Test_helpers
module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology

let check_float = Test_helpers.check_float

let mk ?(n = 15) ?(topology = Topology.Chain) ?(model = Cost_model.naive) ?(mean_card = 100.0)
    ?(variability = 0.5) () =
  Workload.spec ~n ~topology ~model ~mean_card ~variability

let test_catalog_ladder () =
  let spec = mk ~n:5 ~mean_card:100.0 ~variability:1.0 () in
  let catalog = Workload.catalog spec in
  (* |R_0| = mu^(1-v) = 1; |R_4| = mu^(1+v) = 10000; constant ratio. *)
  check_float "R0" 1.0 (Catalog.card catalog 0);
  check_float "R4" 10000.0 (Catalog.card catalog 4);
  let ratio = Catalog.card catalog 1 /. Catalog.card catalog 0 in
  for i = 2 to 4 do
    check_float ~rel:1e-9 "constant ratio" ratio
      (Catalog.card catalog i /. Catalog.card catalog (i - 1))
  done

let test_zero_variability () =
  let catalog = Workload.catalog (mk ~n:7 ~mean_card:464.0 ~variability:0.0 ()) in
  for i = 0 to 6 do
    check_float "all equal" 464.0 (Catalog.card catalog i)
  done

let test_axes () =
  let mc = Workload.mean_card_axis () in
  Alcotest.(check int) "10 mean-card points" 10 (Array.length mc);
  check_float "first" 1.0 mc.(0);
  check_float ~rel:1e-3 "second (4.64)" 4.6416 mc.(1);
  check_float ~rel:1e-3 "third (21.5)" 21.544 mc.(2);
  check_float ~rel:1e-6 "fourth (100)" 100.0 mc.(3);
  check_float ~rel:1e-6 "last (1e6)" 1e6 mc.(9);
  let v = Workload.variability_axis () in
  Alcotest.(check int) "4 variability points" 4 (Array.length v);
  check_float "v0" 0.0 v.(0);
  check_float "v3" 1.0 v.(3)

let test_grid_size_and_order () =
  let specs =
    Workload.grid ~n:15
      ~models:[ Cost_model.naive; Cost_model.sort_merge ]
      ~topologies:[ Topology.Chain; Topology.Star ]
      ~mean_cards:[| 1.0; 100.0 |] ~variabilities:[| 0.0; 1.0 |]
  in
  Alcotest.(check int) "2*2*2*2 specs" 16 (List.length specs);
  (* Row-major: model outermost, variability innermost. *)
  let first = List.hd specs in
  Alcotest.(check string) "first model" "k0" first.Workload.model.Cost_model.name;
  check_float "first variability" 0.0 first.Workload.variability;
  let second = List.nth specs 1 in
  check_float "second variability" 1.0 second.Workload.variability

let test_validation () =
  Alcotest.check_raises "n too small" (Invalid_argument "Workload.spec: need at least two relations")
    (fun () -> ignore (mk ~n:1 ()));
  Alcotest.check_raises "bad variability"
    (Invalid_argument "Workload.spec: variability must lie in [0, 1]") (fun () ->
      ignore (mk ~variability:1.5 ()));
  Alcotest.check_raises "bad mean" (Invalid_argument "Workload.spec: mean_card must be positive")
    (fun () -> ignore (mk ~mean_card:0.0 ()))

let prop_geomean_is_mu =
  QCheck2.Test.make ~count:200 ~name:"catalog geometric mean equals the requested mu"
    QCheck2.Gen.(
      tup3 (int_range 2 18) (float_range 1.0 1e5) (float_range 0.0 1.0))
    (fun (n, mean_card, variability) ->
      let spec = mk ~n ~mean_card ~variability () in
      let catalog = Workload.catalog spec in
      Blitz_util.Float_more.approx_equal ~rel:1e-6 mean_card
        (Catalog.geometric_mean_card catalog))

let prop_result_card_is_mu =
  QCheck2.Test.make ~count:100 ~name:"full-query result cardinality equals mu on the grid"
    QCheck2.Gen.(
      tup4 (int_range 9 15) (oneofl Topology.all_paper) (float_range 1.0 1e4)
        (float_range 0.0 1.0))
    (fun (n, topology, mean_card, variability) ->
      let spec = mk ~n ~topology ~mean_card ~variability () in
      let catalog, graph = Workload.problem spec in
      let result = Join_graph.join_cardinality catalog graph (Relset.full n) in
      Blitz_util.Float_more.approx_equal ~rel:1e-6 mean_card result)

let prop_variability_recovered =
  QCheck2.Test.make ~count:100 ~name:"Catalog.variability recovers the spec's parameter"
    QCheck2.Gen.(tup2 (int_range 3 15) (float_range 0.0 1.0))
    (fun (n, variability) ->
      let spec = mk ~n ~mean_card:1000.0 ~variability () in
      let catalog = Workload.catalog spec in
      Blitz_util.Float_more.approx_equal ~rel:1e-6 ~abs:1e-9 variability
        (Catalog.variability catalog))

let suite =
  [
    Alcotest.test_case "cardinality ladder" `Quick test_catalog_ladder;
    Alcotest.test_case "zero variability" `Quick test_zero_variability;
    Alcotest.test_case "grid axes (paper sample points)" `Quick test_axes;
    Alcotest.test_case "grid size and order" `Quick test_grid_size_and_order;
    Alcotest.test_case "spec validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_geomean_is_mu;
    QCheck_alcotest.to_alcotest prop_result_card_is_mu;
    QCheck_alcotest.to_alcotest prop_variability_recovered;
  ]

(* Join graph, topology wiring and the appendix selectivity formula. *)

open Test_helpers
module Induced = Blitz_graph.Induced

let check_float = Test_helpers.check_float

let fig3 = figure3_graph ~sab:0.1 ~sac:0.2 ~sbc:0.3 ~sad:0.4

let test_basic_accessors () =
  Alcotest.(check int) "n" 4 (Join_graph.n fig3);
  Alcotest.(check int) "edge_count" 4 (Join_graph.edge_count fig3);
  check_float "sel AB" 0.1 (Join_graph.selectivity fig3 0 1);
  check_float "sel BA (symmetric)" 0.1 (Join_graph.selectivity fig3 1 0);
  check_float "sel BD (absent)" 1.0 (Join_graph.selectivity fig3 1 3);
  Alcotest.(check bool) "has_edge AD" true (Join_graph.has_edge fig3 0 3);
  Alcotest.(check bool) "no edge CD" false (Join_graph.has_edge fig3 2 3);
  Alcotest.(check int) "degree A" 3 (Join_graph.degree fig3 0);
  Alcotest.(check int) "degree D" 1 (Join_graph.degree fig3 3);
  Alcotest.(check int) "neighbors of A" 0b1110 (Join_graph.neighbors fig3 0)

let test_validation () =
  Alcotest.check_raises "self edge" (Invalid_argument "Join_graph: self-edge query") (fun () ->
      ignore (Join_graph.of_edges ~n:3 [ (1, 1, 0.5) ]));
  Alcotest.check_raises "duplicate edge"
    (Invalid_argument "Join_graph.of_edges: duplicate edge (1, 0)") (fun () ->
      ignore (Join_graph.of_edges ~n:3 [ (0, 1, 0.5); (1, 0, 0.2) ]));
  Alcotest.check_raises "bad selectivity"
    (Invalid_argument "Join_graph.of_edges: invalid selectivity 0 on (0, 1)") (fun () ->
      ignore (Join_graph.of_edges ~n:3 [ (0, 1, 0.0) ]))

let test_connectivity () =
  Alcotest.(check bool) "fig3 connected" true (Join_graph.is_connected fig3);
  Alcotest.(check bool) "subset {B,D} disconnected" false
    (Join_graph.is_connected_subset fig3 (Relset.of_list [ 1; 3 ]));
  Alcotest.(check bool) "subset {A,B,C} connected" true
    (Join_graph.is_connected_subset fig3 (Relset.of_list [ 0; 1; 2 ]));
  Alcotest.(check bool) "singleton connected" true
    (Join_graph.is_connected_subset fig3 (Relset.singleton 3));
  Alcotest.(check bool) "empty connected" true (Join_graph.is_connected_subset fig3 Relset.empty);
  let disconnected = Join_graph.of_edges ~n:4 [ (0, 1, 0.5) ] in
  Alcotest.(check bool) "missing edges disconnect" false (Join_graph.is_connected disconnected);
  Alcotest.(check bool) "crosses yes" true
    (Join_graph.crosses fig3 (Relset.of_list [ 0 ]) (Relset.of_list [ 1; 2 ]));
  Alcotest.(check bool) "crosses no" false
    (Join_graph.crosses fig3 (Relset.of_list [ 1 ]) (Relset.of_list [ 3 ]))

(* Section 5.3 worked example: with S = {A,B,C}, U = {A}, the fan of S
   is {AB, AC}. *)
let test_fan_paper_example () =
  let s = Relset.of_list [ 0; 1; 2 ] in
  check_float "pi_fan {A,B,C} = sel(AB)*sel(AC)" (0.1 *. 0.2) (Join_graph.pi_fan fig3 s);
  check_float "pi_span {A},{B,C}" (0.1 *. 0.2)
    (Join_graph.pi_span fig3 (Relset.singleton 0) (Relset.of_list [ 1; 2 ]));
  check_float "pi_induced {A,B,C}" (0.1 *. 0.2 *. 0.3) (Join_graph.pi_induced fig3 s);
  check_float "join_cardinality {A,B,C}" (10.0 *. 20.0 *. 30.0 *. 0.1 *. 0.2 *. 0.3)
    (Join_graph.join_cardinality abcd_catalog fig3 s)

let test_fan_recurrence_equation10 () =
  (* Pi_fan(S) = Pi_fan(U+W) * Pi_fan(U+Z) for S = {A,B,C}, W = {B}, Z = {C}. *)
  let fan s = Join_graph.pi_fan fig3 (Relset.of_list s) in
  check_float "Equation 10" (fan [ 0; 1; 2 ]) (fan [ 0; 1 ] *. fan [ 0; 2 ])

(* ---- Topology wiring ---- *)

let test_chain_order_paper () =
  (* Appendix: R0-R8-R1-R9-R2-R10-R3-R11-R4-R12-R5-R13-R6-R14-R7. *)
  Alcotest.(check (array int))
    "n=15 interleave" [| 0; 8; 1; 9; 2; 10; 3; 11; 4; 12; 5; 13; 6; 14; 7 |]
    (Blitz_graph.Topology.chain_order 15)

let norm_edges l = List.sort compare (List.map (fun (i, j) -> (min i j, max i j)) l)

let test_topology_edges () =
  let module T = Blitz_graph.Topology in
  Alcotest.(check int) "chain n=15 edge count" 14 (List.length (T.edge_list T.Chain ~n:15));
  Alcotest.(check int) "cycle+3 n=15 edge count" 18 (List.length (T.edge_list (T.Cycle_plus 3) ~n:15));
  Alcotest.(check int) "star n=15 edge count" 14 (List.length (T.edge_list T.Star ~n:15));
  Alcotest.(check int) "clique n=15 edge count" 105 (List.length (T.edge_list T.Clique ~n:15));
  (* Paper's cycle+3 cross edges: R0-R7 (cycle closure), R8-R14, R1-R6, R9-R13. *)
  let edges = norm_edges (T.edge_list (T.Cycle_plus 3) ~n:15) in
  List.iter
    (fun e ->
      Alcotest.(check bool) (Printf.sprintf "edge (%d,%d) present" (fst e) (snd e)) true
        (List.mem e edges))
    [ (0, 7); (8, 14); (1, 6); (9, 13) ];
  (* Star hub is R14. *)
  List.iter
    (fun (i, j) -> Alcotest.(check int) "star hub" 14 (max i j))
    (T.edge_list T.Star ~n:15);
  Alcotest.(check int) "grid 3x5 edge count" 22 (List.length (T.edge_list (T.Grid (3, 5)) ~n:15));
  Alcotest.check_raises "cycle+3 too small"
    (Invalid_argument "Topology.edge_list: cycle+3 needs at least 9 relations") (fun () ->
      ignore (T.edge_list (T.Cycle_plus 3) ~n:8));
  Alcotest.check_raises "grid mismatch"
    (Invalid_argument "Topology.edge_list: grid 2x3 does not cover 15 relations") (fun () ->
      ignore (T.edge_list (T.Grid (2, 3)) ~n:15))

let test_topology_parse () =
  let module T = Blitz_graph.Topology in
  Alcotest.(check bool) "chain" true (T.of_string "chain" = Ok T.Chain);
  Alcotest.(check bool) "cycle+3" true (T.of_string "cycle+3" = Ok (T.Cycle_plus 3));
  Alcotest.(check bool) "star" true (T.of_string "star" = Ok T.Star);
  Alcotest.(check bool) "clique" true (T.of_string "clique" = Ok T.Clique);
  Alcotest.(check bool) "grid" true (T.of_string "grid:3x5" = Ok (T.Grid (3, 5)));
  Alcotest.(check bool) "garbage rejected" true (Result.is_error (T.of_string "pentagram"));
  List.iter
    (fun t -> Alcotest.(check bool) (T.name t) true (T.of_string (T.name t) = Ok t))
    (T.all_paper @ [ T.Grid (3, 5); T.Cycle_plus 7 ])

(* Appendix claim: "these selectivities yield a query result cardinality
   of mu" — for every topology and any cardinality ladder. *)
let prop_selectivity_formula_result_card =
  QCheck2.Test.make ~count:200 ~name:"appendix selectivities give result cardinality mu"
    QCheck2.Gen.(
      pair (int_bound 100000)
        (pair (int_range 9 15) (oneofl Blitz_graph.Topology.all_paper)))
    (fun (seed, (n, topo)) ->
      let rng = Rng.create ~seed in
      let catalog = random_catalog rng ~n ~lo:2.0 ~hi:1e5 in
      let mu = Catalog.geometric_mean_card catalog in
      let graph =
        Blitz_graph.Topology.assign_selectivities catalog
          (Blitz_graph.Topology.edge_list topo ~n)
          ~result_card:mu
      in
      let result = Join_graph.join_cardinality catalog graph (Relset.full n) in
      Blitz_util.Float_more.approx_equal ~rel:1e-6 mu result)

let prop_pi_span_multiplicative =
  QCheck2.Test.make ~count:200 ~name:"pi_span(U, W+Z) = pi_span(U,W) * pi_span(U,Z)"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 8 in
      let g = random_graph rng ~n ~edge_prob:0.5 ~sel_lo:0.001 ~sel_hi:1.0 in
      (* Pick three disjoint nonempty sets. *)
      let u = Relset.of_list [ 0; 1 ] in
      let w = Relset.of_list [ 2; 3; 4 ] in
      let z = Relset.of_list [ 5; 6; 7 ] in
      Blitz_util.Float_more.approx_equal ~rel:1e-9
        (Join_graph.pi_span g u (Relset.union w z))
        (Join_graph.pi_span g u w *. Join_graph.pi_span g u z))

(* ---- Induced subproblems ---- *)

let test_induced_projection () =
  let s = Relset.of_list [ 0; 2; 3 ] in
  let sub = Induced.project abcd_catalog fig3 s in
  Alcotest.(check int) "sub n" 3 (Catalog.n sub.Induced.catalog);
  Alcotest.(check (array string)) "sub names" [| "A"; "C"; "D" |] (Catalog.names sub.Induced.catalog);
  (* Edges within {A,C,D}: AC (0.2) and AD (0.4); BC and AB drop out. *)
  Alcotest.(check int) "sub edges" 2 (Join_graph.edge_count sub.Induced.graph);
  check_float "sub sel A-C" 0.2 (Join_graph.selectivity sub.Induced.graph 0 1);
  check_float "sub sel A-D" 0.4 (Join_graph.selectivity sub.Induced.graph 0 2);
  Alcotest.(check int) "lift_set" (Relset.of_list [ 0; 3 ])
    (Induced.lift_set sub (Relset.of_list [ 0; 2 ]))

let prop_induced_preserves_cardinalities =
  QCheck2.Test.make ~count:150 ~name:"projection preserves join cardinalities (Section 5.1)"
    ~print:problem_print (problem_gen ~max_n:9)
    (fun p ->
      let n = Catalog.n p.catalog in
      let rng = Rng.create ~seed:(p.seed + 1) in
      (* Random nonempty subset. *)
      let s = 1 + Rng.int rng ((1 lsl n) - 1) in
      let sub = Induced.project p.catalog p.graph s in
      let k = Catalog.n sub.Induced.catalog in
      let ok = ref true in
      for dense = 1 to (1 lsl k) - 1 do
        let parent_set = Induced.lift_set sub dense in
        let a = Join_graph.join_cardinality sub.Induced.catalog sub.Induced.graph dense in
        let b = Join_graph.join_cardinality p.catalog p.graph parent_set in
        if not (Blitz_util.Float_more.approx_equal ~rel:1e-9 a b) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_basic_accessors;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "connectivity" `Quick test_connectivity;
    Alcotest.test_case "fan (Section 5.3 example)" `Quick test_fan_paper_example;
    Alcotest.test_case "Equation 10" `Quick test_fan_recurrence_equation10;
    Alcotest.test_case "appendix chain order (n=15)" `Quick test_chain_order_paper;
    Alcotest.test_case "topology edge lists" `Quick test_topology_edges;
    Alcotest.test_case "topology parsing round-trips" `Quick test_topology_parse;
    Alcotest.test_case "induced projection" `Quick test_induced_projection;
    QCheck_alcotest.to_alcotest prop_selectivity_formula_result_card;
    QCheck_alcotest.to_alcotest prop_pi_span_multiplicative;
    QCheck_alcotest.to_alcotest prop_induced_preserves_cardinalities;
  ]

(* IKKBZ (IK84/KBZ): the polynomial left-deep optimizer for tree
   queries, validated against the exponential left-deep DP oracle. *)

open Test_helpers
module Ikkbz = Blitz_baselines.Ikkbz
module B = Blitz_baselines

(* Random spanning tree over n relations: node i >= 1 attaches to a
   uniformly random earlier node. *)
let random_tree_problem rng ~n =
  let catalog = random_catalog rng ~n ~lo:1.0 ~hi:1e4 in
  let edges =
    List.init (n - 1) (fun k ->
        let i = k + 1 in
        (Rng.int rng i, i, Rng.log_uniform rng ~lo:1e-4 ~hi:1.0))
  in
  (catalog, Join_graph.of_edges ~n edges)

let test_is_tree () =
  let chain = Join_graph.of_edges ~n:3 [ (0, 1, 0.5); (1, 2, 0.5) ] in
  Alcotest.(check bool) "chain is a tree" true (Ikkbz.is_tree chain);
  let cycle = Join_graph.of_edges ~n:3 [ (0, 1, 0.5); (1, 2, 0.5); (0, 2, 0.5) ] in
  Alcotest.(check bool) "cycle is not" false (Ikkbz.is_tree cycle);
  let forest = Join_graph.of_edges ~n:3 [ (0, 1, 0.5) ] in
  Alcotest.(check bool) "forest is not" false (Ikkbz.is_tree forest);
  Alcotest.check_raises "cyclic rejected"
    (Invalid_argument "Ikkbz.optimize: IKKBZ requires a tree join graph (acyclic and connected)")
    (fun () -> ignore (Ikkbz.optimize (Catalog.uniform ~n:3 ~card:10.0) cycle))

let test_two_relations () =
  let catalog = Catalog.of_cards [| 100.0; 50.0 |] in
  let graph = Join_graph.of_edges ~n:2 [ (0, 1, 0.01) ] in
  let r = Ikkbz.optimize catalog graph in
  (* C_out = output size = 100 * 50 * 0.01 = 50, either orientation. *)
  Test_helpers.check_float "cost" 50.0 r.Ikkbz.cost;
  Alcotest.(check bool) "left-deep" true (Plan.is_left_deep r.Ikkbz.plan)

let test_known_chain () =
  (* A -- B -- C with cards 100, 10, 100 and strong selectivities:
     starting from B is best; C_out of (B,A,C) and (B,C,A) are equal by
     symmetry: |AB| = 10, then |ABC| = 10.  Starting from A:
     |AB| = 10, |ABC| = 10 -> same cost here; use asymmetric
     selectivities to force a unique answer. *)
  let catalog = Catalog.of_cards [| 100.0; 10.0; 100.0 |] in
  let graph = Join_graph.of_edges ~n:3 [ (0, 1, 0.01); (1, 2, 0.1) ] in
  let r = Ikkbz.optimize catalog graph in
  (* Candidate C_out values over the 8 connected orders; optimum joins
     the selective A-B edge first: 100*10*.01 = 10, then *100*.1 = 100;
     total 110. *)
  Test_helpers.check_float "optimal C_out" 110.0 r.Ikkbz.cost;
  (* The DP agrees. *)
  let dp = B.Leftdeep.optimize ~policy:B.Leftdeep.Forbidden Cost_model.naive catalog graph in
  Test_helpers.check_float "DP agrees" dp.B.Leftdeep.cost r.Ikkbz.cost

let test_result_consistency () =
  let rng = Rng.create ~seed:31 in
  let catalog, graph = random_tree_problem rng ~n:9 in
  let r = Ikkbz.optimize catalog graph in
  Alcotest.(check bool) "valid plan" true (Result.is_ok (Plan.validate ~n:9 r.Ikkbz.plan));
  Alcotest.(check bool) "left-deep" true (Plan.is_left_deep r.Ikkbz.plan);
  Alcotest.(check int) "no products" 0 (Plan.cartesian_join_count graph r.Ikkbz.plan);
  Alcotest.(check int) "order covers all" 9 (List.length r.Ikkbz.order);
  (* The reported C_out equals the reference kappa_0 costing of the plan. *)
  Test_helpers.check_float ~rel:1e-9 "cost = Plan.cost under kappa_0"
    (Plan.cost Cost_model.naive catalog graph r.Ikkbz.plan)
    r.Ikkbz.cost

let prop_matches_leftdeep_dp =
  QCheck2.Test.make ~count:200
    ~name:"IKKBZ = exponential left-deep no-products DP on tree queries (C_out)"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 10))
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let catalog, graph = random_tree_problem rng ~n in
      let kbz = Ikkbz.optimize catalog graph in
      let dp = B.Leftdeep.optimize ~policy:B.Leftdeep.Forbidden Cost_model.naive catalog graph in
      if not (Blitz_util.Float_more.approx_equal ~rel:1e-6 kbz.Ikkbz.cost dp.B.Leftdeep.cost) then
        QCheck2.Test.fail_reportf "IKKBZ %.9g vs DP %.9g" kbz.Ikkbz.cost dp.B.Leftdeep.cost;
      true)

let prop_order_is_connected_prefix =
  QCheck2.Test.make ~count:150 ~name:"every prefix of the IKKBZ order is connected"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 12))
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let catalog, graph = random_tree_problem rng ~n in
      let r = Ikkbz.optimize catalog graph in
      let ok = ref true in
      let prefix = ref Relset.empty in
      List.iter
        (fun rel ->
          prefix := Relset.add !prefix rel;
          if not (Join_graph.is_connected_subset graph !prefix) then ok := false)
        r.Ikkbz.order;
      !ok && Relset.equal !prefix (Relset.full n))

let prop_polynomial_never_beats_bushy =
  QCheck2.Test.make ~count:100 ~name:"IKKBZ (left-deep) never beats the bushy optimum"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 9))
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let catalog, graph = random_tree_problem rng ~n in
      let kbz = Ikkbz.optimize catalog graph in
      let bushy =
        Blitz_core.Blitzsplit.best_cost
          (Blitz_core.Blitzsplit.optimize_join Cost_model.naive catalog graph)
      in
      kbz.Ikkbz.cost >= bushy *. (1.0 -. 1e-9))

let suite =
  [
    Alcotest.test_case "tree detection and rejection" `Quick test_is_tree;
    Alcotest.test_case "two relations" `Quick test_two_relations;
    Alcotest.test_case "known chain optimum" `Quick test_known_chain;
    Alcotest.test_case "result consistency" `Quick test_result_consistency;
    QCheck_alcotest.to_alcotest prop_matches_leftdeep_dp;
    QCheck_alcotest.to_alcotest prop_order_is_connected_prefix;
    QCheck_alcotest.to_alcotest prop_polynomial_never_beats_bushy;
  ]

(* Hybrid bushy+multiway planning: the AGM cover solver, the structural
   gate, bit-identity on acyclic topologies, hybrid wins on cyclic
   cores, and end-to-end flow through dpccp, the engine cache and the
   fingerprint rebase. *)

open Test_helpers
module Hypergraph = Blitz_graph.Hypergraph
module Agm = Blitz_cost.Agm
module Blitzsplit = Blitz_core.Blitzsplit
module Threshold = Blitz_core.Threshold
module Multiway = Blitz_core.Multiway
module Counters = Blitz_core.Counters
module Dpccp = Blitz_dpccp.Dpccp
module Engine = Blitz_engine.Engine
module Registry = Blitz_engine.Registry
module Plan_cache = Blitz_cache.Plan_cache
module Fingerprint = Blitz_cache.Fingerprint
module Workload = Blitz_workload.Workload

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let solve ~n edges cards set =
  let catalog = Catalog.of_cards cards in
  let packed = Hypergraph.pack (Hypergraph.of_edges ~n edges) in
  ignore (Catalog.n catalog);
  Agm.fractional_edge_cover catalog packed set

(* {1 The AGM cover solver on hand-computed optima} *)

let test_triangle_cover () =
  (* Triangle, N = 100 each, sel = 0.01 each: the classic fractional
     cover is x = 1/2 on every edge, bound = (N^2 s)^(3/2) = N^3 s^(3/2)
     = 1e6 * 1e-3 = 1000 — strictly below the pairwise-join estimate. *)
  let edges =
    [ (Relset.of_list [ 0; 1 ], 0.01);
      (Relset.of_list [ 1; 2 ], 0.01);
      (Relset.of_list [ 0; 2 ], 0.01) ]
  in
  let c = solve ~n:3 edges [| 100.0; 100.0; 100.0 |] (Relset.full 3) in
  Alcotest.(check bool) "exhaustive" true c.Agm.exact;
  check_float ~rel:1e-9 "triangle bound" 1000.0 c.Agm.bound;
  Alcotest.(check int) "three weighted edges" 3 (List.length c.Agm.weights);
  List.iter (fun (_, w) -> check_float "half-integral" 0.5 w) c.Agm.weights

let test_four_clique_cover () =
  (* K4, N = 100, s = 0.01: a perfect matching at weight 1 attains the
     half-integral optimum G = 4 ln N + 2 ln s, bound = N^4 s^2 = 1e4.
     Three matchings tie, so assert the bound, not the weights. *)
  let e a b = (Relset.of_list [ a; b ], 0.01) in
  let edges = [ e 0 1; e 0 2; e 0 3; e 1 2; e 1 3; e 2 3 ] in
  let c = solve ~n:4 edges [| 100.0; 100.0; 100.0; 100.0 |] (Relset.full 4) in
  Alcotest.(check bool) "exhaustive (m = 6 = cap)" true c.Agm.exact;
  check_float ~rel:1e-9 "4-clique bound" 1e4 c.Agm.bound

let test_four_cycle_cover () =
  (* C4: the matching {01, 23} at weight 1 and the all-1/2 cover give
     the same G = 4 ln N + 2 ln s — a genuine LP tie.  Bound only. *)
  let e a b = (Relset.of_list [ a; b ], 0.01) in
  let edges = [ e 0 1; e 1 2; e 2 3; e 3 0 ] in
  let c = solve ~n:4 edges [| 100.0; 100.0; 100.0; 100.0 |] (Relset.full 4) in
  check_float ~rel:1e-9 "4-cycle bound" 1e4 c.Agm.bound

let test_edgeless_and_induced () =
  (* No induced edge: all self-covers, bound = product of cards.  A
     subset that cuts every edge behaves the same. *)
  let e a b = (Relset.of_list [ a; b ], 0.5) in
  let c = solve ~n:4 [ e 0 1 ] [| 10.0; 20.0; 30.0; 40.0 |] (Relset.of_list [ 2; 3 ]) in
  check_float "pure product" 1200.0 c.Agm.bound;
  Alcotest.(check int) "no weights" 0 (List.length c.Agm.weights)

let test_descent_beyond_cap () =
  (* A 5-clique induces 10 edges > exact_edge_cap: the coordinate
     descent runs instead.  It starts from all-1/2 (objective N^10 s^5 =
     1e10 here) and only ever descends, and any x >= 0 is a sound
     bound, so the result must be finite and no worse than the start. *)
  let edges = ref [] in
  for i = 0 to 4 do
    for j = i + 1 to 4 do
      edges := (Relset.of_list [ i; j ], 0.01) :: !edges
    done
  done;
  let c = solve ~n:5 !edges (Array.make 5 100.0) (Relset.full 5) in
  Alcotest.(check bool) "not exhaustive" false c.Agm.exact;
  Alcotest.(check bool) "finite" true (Float.is_finite c.Agm.bound);
  Alcotest.(check bool) "no worse than the all-1/2 start" true (c.Agm.bound <= 1e10)

let test_kappa_multiway () =
  (* kappa = sum(inputs) + min(agm, max(out, max_input)). *)
  check_float "agm caps" (60.0 +. 25.0)
    (Agm.kappa_multiway ~inputs:[ 10.0; 20.0; 30.0 ] ~out:5.0 ~agm:25.0);
  check_float "out floor" (60.0 +. 100.0)
    (Agm.kappa_multiway ~inputs:[ 10.0; 20.0; 30.0 ] ~out:100.0 ~agm:1e9);
  check_float "max input floor" (60.0 +. 30.0)
    (Agm.kappa_multiway ~inputs:[ 10.0; 20.0; 30.0 ] ~out:5.0 ~agm:1e9)

(* {1 The structural gate} *)

let test_two_edge_connected_gate () =
  let triangle =
    Join_graph.of_edges ~n:4 [ (0, 1, 0.1); (1, 2, 0.1); (0, 2, 0.1); (2, 3, 0.1) ]
  in
  let tec = Join_graph.two_edge_connected_subset triangle in
  Alcotest.(check bool) "triangle core" true (tec (Relset.of_list [ 0; 1; 2 ]));
  Alcotest.(check bool) "pendant breaks it" false (tec (Relset.full 4));
  Alcotest.(check bool) "pairs never qualify" false (tec (Relset.of_list [ 0; 1 ]));
  let chain = Join_graph.of_edges ~n:5 [ (0, 1, 0.1); (1, 2, 0.1); (2, 3, 0.1); (3, 4, 0.1) ] in
  let tec = Join_graph.two_edge_connected_subset chain in
  for s = 1 to (1 lsl 5) - 1 do
    if tec s then Alcotest.failf "chain subset %d claimed 2-edge-connected" s
  done

(* {1 Acyclic topologies: bit-identity to the seed optimizer} *)

let random_tree rng ~n =
  (* Random parent links give a uniform-enough spanning tree. *)
  let edges = ref [] in
  for i = 1 to n - 1 do
    let p = Rng.int rng i in
    edges := (p, i, Rng.log_uniform rng ~lo:1e-4 ~hi:1.0) :: !edges
  done;
  Join_graph.of_edges ~n !edges

let test_acyclic_bit_identity =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150
       ~name:"acyclic graphs: --multiway is bit-identical to the seed optimizer"
       ~print:string_of_int
       QCheck2.Gen.(int_bound 1_000_000)
       (fun seed ->
         let rng = Rng.create ~seed in
         let n = 2 + Rng.int rng 9 in
         let catalog = random_catalog rng ~n ~lo:1.0 ~hi:1e4 in
         let graph = random_tree rng ~n in
         let model =
           match Rng.int rng 3 with
           | 0 -> Cost_model.naive
           | 1 -> Cost_model.sort_merge
           | _ -> Cost_model.kdnl
         in
         let ctr = Counters.create () in
         let seed_run = Blitzsplit.optimize_join model catalog graph in
         let mw_run =
           Blitzsplit.optimize_join ~counters:ctr ~multiway:true model catalog graph
         in
         let plans_equal =
           match (Blitzsplit.best_plan seed_run, Blitzsplit.best_plan mw_run) with
           | Some a, Some b -> Plan.equal a b && not (Plan.has_multiway b)
           | None, None -> true
           | _ -> false
         in
         ctr.Counters.multiway_wins = 0
         && same_float (Blitzsplit.best_cost seed_run) (Blitzsplit.best_cost mw_run)
         && plans_equal))

(* {1 Cyclic cores: the hybrid strictly wins and flows end-to-end} *)

let clique_problem ?(n = 8) () =
  let spec =
    Workload.spec ~n ~topology:Topology.Clique ~model:Cost_model.kdnl ~mean_card:100.0
      ~variability:0.5
  in
  Workload.problem spec

let test_clique_hybrid_wins () =
  let catalog, graph = clique_problem () in
  let model = Cost_model.kdnl in
  let ctr = Counters.create () in
  let binary = Blitzsplit.optimize_join model catalog graph in
  let hybrid = Blitzsplit.optimize_join ~counters:ctr ~multiway:true model catalog graph in
  Alcotest.(check bool) "strictly cheaper" true
    (Blitzsplit.best_cost hybrid < Blitzsplit.best_cost binary);
  Alcotest.(check bool) "some multiway wins" true (ctr.Counters.multiway_wins > 0);
  let plan = Blitzsplit.best_plan_exn hybrid in
  Alcotest.(check bool) "plan contains a multiway node" true (Plan.has_multiway plan);
  Alcotest.(check bool) "covers all relations" true
    (Relset.equal (Plan.relations plan) (Relset.full (Catalog.n catalog)));
  (* The extracted plan re-prices to the table's cost: Plan.cost
     re-solves the AGM bound from the catalog, exactly as the DP did. *)
  check_float ~rel:1e-9 "plan re-prices to table cost" (Blitzsplit.best_cost hybrid)
    (Plan.cost model catalog graph plan)

let test_threshold_multiway () =
  (* The thresholded driver escalates until a pass succeeds; with
     multiway on, its final answer matches the exact hybrid run. *)
  let catalog, graph = clique_problem () in
  let model = Cost_model.kdnl in
  let exact = Blitzsplit.optimize_join ~multiway:true model catalog graph in
  let o = Threshold.optimize_join ~threshold:10.0 ~multiway:true model catalog graph in
  check_float ~rel:1e-12 "thresholded = exact" (Blitzsplit.best_cost exact)
    (Blitzsplit.best_cost o.Threshold.result)

let test_dpccp_multiway () =
  let model = Cost_model.kdnl in
  (* Clique: connectivity never binds, so dpccp's hybrid answer matches
     blitzsplit's hybrid answer (same table recurrence, same gate). *)
  let catalog, graph = clique_problem () in
  let bs = Blitzsplit.optimize_join ~multiway:true model catalog graph in
  let dp = Dpccp.optimize ~multiway:true model catalog graph in
  check_float ~rel:1e-12 "dense dpccp = blitzsplit (clique)" (Blitzsplit.best_cost bs)
    dp.Dpccp.cost;
  (match dp.Dpccp.plan with
  | Some p -> Alcotest.(check bool) "dpccp plan is hybrid" true (Plan.has_multiway p)
  | None -> Alcotest.fail "dpccp returned no plan");
  (* Sparse backend: force it on the same problem; cost must agree. *)
  let sp = Dpccp.optimize ~backend:`Sparse ~multiway:true model catalog graph in
  check_float ~rel:1e-9 "sparse dpccp agrees" dp.Dpccp.cost sp.Dpccp.cost;
  (* Chain: acyclic, so multiway must change nothing — bitwise. *)
  let spec =
    Workload.spec ~n:10 ~topology:Topology.Chain ~model ~mean_card:100.0 ~variability:0.3
  in
  let ccat, cgraph = Workload.problem spec in
  let a = Dpccp.optimize model ccat cgraph in
  let b = Dpccp.optimize ~multiway:true model ccat cgraph in
  Alcotest.(check bool) "chain bitwise" true (same_float a.Dpccp.cost b.Dpccp.cost)

(* {1 Fingerprint: n-ary plans canonize and rebase losslessly} *)

let test_fingerprint_roundtrip_multiway () =
  let catalog, graph = clique_problem () in
  let model = Cost_model.kdnl in
  let plan = Blitzsplit.best_plan_exn (Blitzsplit.optimize_join ~multiway:true model catalog graph) in
  Alcotest.(check bool) "hybrid plan" true (Plan.has_multiway plan);
  let s = Fingerprint.create_scratch () in
  Fingerprint.compute s ~model_digest:(Fingerprint.model_digest model) catalog (Some graph);
  let round = Fingerprint.rebase_plan s (Fingerprint.canonize_plan s plan) in
  Alcotest.(check bool) "rebase . canonize = id" true (Plan.equal plan round);
  Alcotest.(check bool) "multiway survives the roundtrip" true (Plan.has_multiway round)

(* {1 Engine cache: the +mw key keeps plan populations apart} *)

let test_cache_isolation () =
  let catalog, graph = clique_problem () in
  let model = Cost_model.kdnl in
  let prob = Registry.problem ~graph catalog in
  let cache = Plan_cache.create () in
  Engine.with_session ~model ~cache (fun session ->
      let mw = Engine.optimize ~multiway:true session prob in
      let mw_plan = match mw.Registry.plan with Some p -> p | None -> Alcotest.fail "no plan" in
      Alcotest.(check bool) "hybrid cached run has multiway" true (Plan.has_multiway mw_plan);
      (* A multiway=false caller on the same query must never be served
         the n-ary plan — the decorated key routes it to a miss. *)
      let before = Plan_cache.stats cache in
      let plain = Engine.optimize session prob in
      let after = Plan_cache.stats cache in
      Alcotest.(check int) "plain call misses the +mw entry" before.Plan_cache.hits
        after.Plan_cache.hits;
      (match plain.Registry.plan with
      | Some p -> Alcotest.(check bool) "binary plan stays binary" false (Plan.has_multiway p)
      | None -> Alcotest.fail "no plan");
      (* And the hybrid caller hits its own entry, bit-identically. *)
      let b2 = Plan_cache.stats cache in
      let hit = Engine.optimize ~multiway:true session prob in
      let a2 = Plan_cache.stats cache in
      Alcotest.(check int) "hybrid rerun hits" (b2.Plan_cache.hits + 1) a2.Plan_cache.hits;
      Alcotest.(check bool) "hit cost bit-identical" true
        (same_float mw.Registry.cost hit.Registry.cost);
      match hit.Registry.plan with
      | Some p -> Alcotest.(check bool) "hit plan is hybrid" true (Plan.has_multiway p)
      | None -> Alcotest.fail "no hit plan")

let test_incapable_optimizer_ignores_flag () =
  (* dpsize has no multiway capability: the flag neither changes its
     answer nor decorates its cache key. *)
  let catalog, graph = clique_problem ~n:6 () in
  let prob = Registry.problem ~graph catalog in
  let cache = Plan_cache.create () in
  Engine.with_session ~model:Cost_model.kdnl ~cache (fun session ->
      let cold = Engine.optimize ~optimizer:"dpsize" ~multiway:true session prob in
      (match cold.Registry.plan with
      | Some p -> Alcotest.(check bool) "no multiway node" false (Plan.has_multiway p)
      | None -> Alcotest.fail "no plan");
      let before = Plan_cache.stats cache in
      let hit = Engine.optimize ~optimizer:"dpsize" session prob in
      let after = Plan_cache.stats cache in
      Alcotest.(check int) "same key, so a hit" (before.Plan_cache.hits + 1)
        after.Plan_cache.hits;
      Alcotest.(check bool) "same cost" true (same_float cold.Registry.cost hit.Registry.cost))

let suite =
  [
    Alcotest.test_case "agm: triangle cover" `Quick test_triangle_cover;
    Alcotest.test_case "agm: 4-clique cover" `Quick test_four_clique_cover;
    Alcotest.test_case "agm: 4-cycle cover" `Quick test_four_cycle_cover;
    Alcotest.test_case "agm: edgeless/induced" `Quick test_edgeless_and_induced;
    Alcotest.test_case "agm: descent beyond the cap" `Quick test_descent_beyond_cap;
    Alcotest.test_case "agm: kappa_multiway" `Quick test_kappa_multiway;
    Alcotest.test_case "gate: 2-edge-connected subsets" `Quick test_two_edge_connected_gate;
    test_acyclic_bit_identity;
    Alcotest.test_case "clique: hybrid strictly wins" `Quick test_clique_hybrid_wins;
    Alcotest.test_case "thresholded multiway = exact" `Quick test_threshold_multiway;
    Alcotest.test_case "dpccp multiway (dense+sparse)" `Quick test_dpccp_multiway;
    Alcotest.test_case "fingerprint roundtrip (n-ary)" `Quick test_fingerprint_roundtrip_multiway;
    Alcotest.test_case "cache: +mw key isolation" `Quick test_cache_isolation;
    Alcotest.test_case "cache: incapable optimizer ignores flag" `Quick
      test_incapable_optimizer_ignores_flag;
  ]

(* Join hypergraphs and the hypergraph optimizer variant. *)

open Test_helpers
module Hypergraph = Blitz_graph.Hypergraph
module Blitzsplit = Blitz_core.Blitzsplit
module Blitzsplit_hyper = Blitz_core.Blitzsplit_hyper
module Dp_table = Blitz_core.Dp_table
module B = Blitz_baselines

let check_float = Test_helpers.check_float

let three_way =
  (* One ordinary edge (0,1) and one 3-way predicate over {0,2,3}. *)
  Hypergraph.of_edges ~n:4
    [ (Relset.of_list [ 0; 1 ], 0.01); (Relset.of_list [ 0; 2; 3 ], 0.001) ]

let test_construction_and_validation () =
  Alcotest.(check int) "n" 4 (Hypergraph.n three_way);
  Alcotest.(check int) "edges" 2 (List.length (Hypergraph.edges three_way));
  Alcotest.check_raises "singleton hyperedge"
    (Invalid_argument "Hypergraph.of_edges: a hyperedge needs at least two relations") (fun () ->
      ignore (Hypergraph.of_edges ~n:3 [ (Relset.singleton 0, 0.5) ]));
  Alcotest.check_raises "duplicate member set"
    (Invalid_argument "Hypergraph.of_edges: duplicate hyperedge member set") (fun () ->
      ignore
        (Hypergraph.of_edges ~n:3
           [ (Relset.of_list [ 0; 1 ], 0.5); (Relset.of_list [ 0; 1 ], 0.2) ]));
  Alcotest.check_raises "bad selectivity"
    (Invalid_argument "Hypergraph.of_edges: selectivity 1.5 outside (0, 1]") (fun () ->
      ignore (Hypergraph.of_edges ~n:3 [ (Relset.of_list [ 0; 1 ], 1.5) ]))

let test_cardinality_semantics () =
  let catalog = Catalog.of_cards [| 10.0; 20.0; 30.0; 40.0 |] in
  (* {0,1}: binary edge applies. *)
  check_float "pair" (10.0 *. 20.0 *. 0.01)
    (Hypergraph.join_cardinality catalog three_way (Relset.of_list [ 0; 1 ]));
  (* {0,2}: the 3-way edge is NOT yet complete: pure product. *)
  check_float "incomplete hyperedge" (10.0 *. 30.0)
    (Hypergraph.join_cardinality catalog three_way (Relset.of_list [ 0; 2 ]));
  (* {0,2,3}: now it applies. *)
  check_float "complete hyperedge" (10.0 *. 30.0 *. 40.0 *. 0.001)
    (Hypergraph.join_cardinality catalog three_way (Relset.of_list [ 0; 2; 3 ]));
  (* Full set: both apply once. *)
  check_float "full" (240000.0 *. 0.01 *. 0.001)
    (Hypergraph.join_cardinality catalog three_way (Relset.full 4))

let test_span_and_crosses () =
  (* Joining {0,2} with {3} completes the 3-way edge. *)
  check_float "span completes" 0.001
    (Hypergraph.pi_span three_way (Relset.of_list [ 0; 2 ]) (Relset.singleton 3));
  Alcotest.(check bool) "crosses" true
    (Hypergraph.crosses three_way (Relset.of_list [ 0; 2 ]) (Relset.singleton 3));
  (* Joining {2} with {3} does not (0 still missing). *)
  check_float "span incomplete" 1.0
    (Hypergraph.pi_span three_way (Relset.singleton 2) (Relset.singleton 3));
  Alcotest.(check bool) "no cross" false
    (Hypergraph.crosses three_way (Relset.singleton 2) (Relset.singleton 3))

let test_optimizer_table_cardinalities () =
  let catalog = Catalog.of_cards [| 10.0; 20.0; 30.0; 40.0 |] in
  let r = Blitzsplit_hyper.optimize Cost_model.naive catalog three_way in
  for s = 1 to 15 do
    check_float
      (Printf.sprintf "card of subset %d" s)
      (Hypergraph.join_cardinality catalog three_way s)
      (Dp_table.card r.Blitzsplit_hyper.table s)
  done

let test_binary_embedding_agrees_with_plain () =
  (* A hypergraph of binary edges must reproduce the ordinary optimizer
     exactly. *)
  let rng = Rng.create ~seed:77 in
  let catalog = random_catalog rng ~n:7 ~lo:1.0 ~hi:1e4 in
  let graph = random_graph rng ~n:7 ~edge_prob:0.5 ~sel_lo:1e-3 ~sel_hi:1.0 in
  let hyper = Hypergraph.of_join_graph graph in
  let a = Blitzsplit.optimize_join Cost_model.kdnl catalog graph in
  let b = Blitzsplit_hyper.optimize Cost_model.kdnl catalog hyper in
  check_float ~rel:1e-9 "same optimum" (Blitzsplit.best_cost a) (Blitzsplit_hyper.best_cost b)

(* Random hypergraph problems for the brute-force oracle. *)
let hyper_problem_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Rng.create ~seed in
        let n = 3 + Rng.int rng 4 in
        let catalog = random_catalog rng ~n ~lo:1.0 ~hi:1e4 in
        let count = 1 + Rng.int rng n in
        let edges = ref [] and seen = Hashtbl.create 8 in
        for _ = 1 to count do
          let size = 2 + Rng.int rng (n - 1) in
          let members = ref Relset.empty in
          while Relset.cardinal !members < size do
            members := Relset.add !members (Rng.int rng n)
          done;
          if not (Hashtbl.mem seen !members) then begin
            Hashtbl.add seen !members ();
            edges := (!members, Rng.log_uniform rng ~lo:1e-4 ~hi:1.0) :: !edges
          end
        done;
        let model =
          match Rng.int rng 3 with
          | 0 -> Cost_model.naive
          | 1 -> Cost_model.sort_merge
          | _ -> Cost_model.kdnl
        in
        (seed, n, catalog, Hypergraph.of_edges ~n !edges, model))
      (int_bound 1_000_000))

let hyper_problem_print (seed, n, _, h, (model : Cost_model.t)) =
  Printf.sprintf "seed=%d n=%d hyperedges=%d model=%s" seed n
    (List.length (Hypergraph.edges h))
    model.Cost_model.name

let prop_hyper_matches_bruteforce =
  QCheck2.Test.make ~count:120 ~name:"hypergraph optimizer finds the brute-force optimum"
    ~print:hyper_problem_print hyper_problem_gen
    (fun (_, n, catalog, hyper, model) ->
      let r = Blitzsplit_hyper.optimize model catalog hyper in
      let eval =
        B.Eval.of_cardinality model ~n (Hypergraph.join_cardinality catalog hyper)
      in
      let _, oracle = B.Bruteforce.optimize_subset eval (Relset.full n) in
      Blitz_util.Float_more.approx_equal ~rel:1e-6 oracle (Blitzsplit_hyper.best_cost r))

let prop_extracted_plan_recosts =
  QCheck2.Test.make ~count:100 ~name:"extracted plans re-cost to the reported optimum"
    ~print:hyper_problem_print hyper_problem_gen
    (fun (_, n, catalog, hyper, model) ->
      let r = Blitzsplit_hyper.optimize model catalog hyper in
      let plan = Blitzsplit_hyper.best_plan_exn r in
      let eval =
        B.Eval.of_cardinality model ~n (Hypergraph.join_cardinality catalog hyper)
      in
      Relset.equal (Plan.relations plan) (Relset.full n)
      && Blitz_util.Float_more.approx_equal ~rel:1e-6 (B.Eval.cost eval plan)
           (Blitzsplit_hyper.best_cost r))

let suite =
  [
    Alcotest.test_case "construction and validation" `Quick test_construction_and_validation;
    Alcotest.test_case "cardinality semantics" `Quick test_cardinality_semantics;
    Alcotest.test_case "span and crosses" `Quick test_span_and_crosses;
    Alcotest.test_case "optimizer table cardinalities" `Quick test_optimizer_table_cardinalities;
    Alcotest.test_case "binary embedding = plain optimizer" `Quick
      test_binary_embedding_agrees_with_plain;
    QCheck_alcotest.to_alcotest prop_hyper_matches_bruteforce;
    QCheck_alcotest.to_alcotest prop_extracted_plan_recosts;
  ]

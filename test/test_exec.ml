(* The execution-engine substrate: operators agree, plans run, estimates
   track actuals. *)

open Test_helpers
module Table = Blitz_exec.Table
module Datagen = Blitz_exec.Datagen
module Operators = Blitz_exec.Operators
module Executor = Blitz_exec.Executor

(* ---- Table ---- *)

let test_table_basics () =
  let t =
    Table.create ~name:"t" ~columns:[| "id"; "x" |] ~rows:[| [| 0; 5 |]; [| 1; 7 |] |]
  in
  Alcotest.(check int) "rows" 2 (Table.n_rows t);
  Alcotest.(check int) "cols" 2 (Table.n_columns t);
  Alcotest.(check (option int)) "column_index" (Some 1) (Table.column_index t "x");
  Alcotest.(check (option int)) "column_index miss" None (Table.column_index t "y");
  Alcotest.(check int) "get" 7 (Table.get t ~row:1 ~col:1);
  Alcotest.(check (array int)) "row copy" [| 0; 5 |] (Table.row t 0)

let test_table_validation () =
  Alcotest.check_raises "duplicate column" (Invalid_argument "Table.create: duplicate column \"x\"")
    (fun () -> ignore (Table.create ~name:"t" ~columns:[| "x"; "x" |] ~rows:[||]));
  Alcotest.check_raises "ragged row"
    (Invalid_argument "Table.create: row 0 has width 1, expected 2") (fun () ->
      ignore (Table.create ~name:"t" ~columns:[| "a"; "b" |] ~rows:[| [| 1 |] |]))

(* ---- Operators ---- *)

let join_fixture () =
  let left = [| [| 1; 10 |]; [| 2; 20 |]; [| 2; 21 |]; [| 3; 30 |] |] in
  let right = [| [| 2; 200 |]; [| 3; 300 |]; [| 3; 301 |]; [| 4; 400 |] |] in
  let keys = [ { Operators.left_col = 0; right_col = 0 } ] in
  (left, right, keys)

let test_operators_agree () =
  let left, right, keys = join_fixture () in
  let nl = Operators.nested_loop_join ~left ~right ~keys in
  let h = Operators.hash_join ~left ~right ~keys in
  let sm = Operators.sort_merge_join ~left ~right ~keys in
  Alcotest.(check int) "match count" 4 (Array.length nl);
  Alcotest.(check bool) "hash = nested loop" true (Operators.same_multiset nl h);
  Alcotest.(check bool) "sort-merge = nested loop" true (Operators.same_multiset nl sm)

let test_cartesian_product_operator () =
  let left = [| [| 1 |]; [| 2 |] |] and right = [| [| 10 |]; [| 20 |]; [| 30 |] |] in
  List.iter
    (fun (name, join) ->
      let out = join ~left ~right ~keys:[] in
      Alcotest.(check int) (name ^ " cross size") 6 (Array.length out))
    [
      ("nested-loop", Operators.nested_loop_join);
      ("hash", Operators.hash_join);
      ("sort-merge", Operators.sort_merge_join);
    ]

let prop_operators_agree_random =
  QCheck2.Test.make ~count:150 ~name:"the three join operators return the same multiset"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let rows count width domain =
        Array.init count (fun _ -> Array.init width (fun _ -> Rng.int rng domain))
      in
      let left = rows (1 + Rng.int rng 40) 2 5 in
      let right = rows (1 + Rng.int rng 40) 2 5 in
      let keys =
        if Rng.bool rng then [ { Operators.left_col = 0; right_col = 0 } ]
        else
          [ { Operators.left_col = 0; right_col = 0 }; { Operators.left_col = 1; right_col = 1 } ]
      in
      let nl = Operators.nested_loop_join ~left ~right ~keys in
      Operators.same_multiset nl (Operators.hash_join ~left ~right ~keys)
      && Operators.same_multiset nl (Operators.sort_merge_join ~left ~right ~keys))

(* ---- Datagen ---- *)

let test_datagen_shapes () =
  let catalog = Catalog.of_list [ ("r", 100.0); ("s", 50.0); ("t", 20.0) ] in
  let graph = Join_graph.of_edges ~n:3 [ (0, 1, 0.01); (1, 2, 0.05) ] in
  let rng = Rng.create ~seed:42 in
  let data = Datagen.generate ~rng catalog graph in
  Alcotest.(check int) "r rows" 100 (Table.n_rows data.Datagen.tables.(0));
  Alcotest.(check int) "s rows" 50 (Table.n_rows data.Datagen.tables.(1));
  Alcotest.(check int) "t rows" 20 (Table.n_rows data.Datagen.tables.(2));
  (* s participates in both predicates: id + two join columns. *)
  Alcotest.(check int) "s columns" 3 (Table.n_columns data.Datagen.tables.(1));
  Alcotest.(check (option int)) "shared attribute present" (Some 1)
    (Table.column_index data.Datagen.tables.(0) (Datagen.edge_attribute 0 1));
  Test_helpers.check_float "realized selectivity 0.01" 0.01
    (Datagen.realized_selectivity graph 0 1);
  (* max_rows guard *)
  let big = Catalog.of_list [ ("huge", 1e7) ] in
  Alcotest.check_raises "row cap"
    (Invalid_argument "Datagen.generate: relation huge needs 10000000 rows (max_rows = 500000)")
    (fun () ->
      ignore (Datagen.generate ~rng big (Join_graph.no_predicates ~n:1)))

let test_realized_statistics () =
  let catalog = Catalog.of_list [ ("r", 100.4); ("s", 50.0) ] in
  let graph = Join_graph.of_edges ~n:2 [ (0, 1, 0.0301) ] in
  let rng = Rng.create ~seed:1 in
  let data = Datagen.generate ~rng catalog graph in
  let rc = Datagen.realized_catalog data in
  Test_helpers.check_float "rounded card" 100.0 (Catalog.card rc 0);
  let rg = Datagen.realized_graph data in
  (* 1/0.0301 rounds to 33 -> realized 1/33. *)
  Test_helpers.check_float ~rel:1e-9 "realized selectivity" (1.0 /. 33.0)
    (Join_graph.selectivity rg 0 1)

(* ---- Executor ---- *)

let chain_dataset ?(seed = 7) () =
  let catalog = Catalog.of_list [ ("r", 200.0); ("s", 100.0); ("t", 50.0) ] in
  let graph = Join_graph.of_edges ~n:3 [ (0, 1, 0.02); (1, 2, 0.05) ] in
  let rng = Rng.create ~seed in
  (Datagen.generate ~rng catalog graph, catalog, graph)

let test_executor_algorithms_agree () =
  let data, _, _ = chain_dataset () in
  let plan = Plan.(Join (Join (Leaf 0, Leaf 1), Leaf 2)) in
  let counts =
    List.map
      (fun algorithm -> (Executor.run ~algorithm data plan).Executor.rows)
      [ Executor.Nested_loop; Executor.Hash; Executor.Sort_merge ]
  in
  match counts with
  | [ a; b; c ] ->
    Alcotest.(check int) "hash = nl" a b;
    Alcotest.(check int) "sm = nl" a c
  | _ -> assert false

let test_executor_plan_shape_invariance () =
  (* Different join orders of the same query produce the same result
     cardinality. *)
  let data, _, _ = chain_dataset () in
  let p1 = Plan.(Join (Join (Leaf 0, Leaf 1), Leaf 2)) in
  let p2 = Plan.(Join (Leaf 0, Join (Leaf 1, Leaf 2))) in
  let p3 = Plan.(Join (Join (Leaf 0, Leaf 2), Leaf 1)) in
  let rows p = (Executor.run data p).Executor.rows in
  Alcotest.(check int) "order invariant (right-deep)" (rows p1) (rows p2);
  Alcotest.(check int) "order invariant (product first)" (rows p1) (rows p3)

let test_executor_trace () =
  let data, _, _ = chain_dataset () in
  let plan = Plan.(Join (Join (Leaf 0, Leaf 2), Leaf 1)) in
  let result = Executor.run data plan in
  Alcotest.(check int) "two joins traced" 2 (List.length result.Executor.trace);
  (match result.Executor.trace with
  | [ first; second ] ->
    Alcotest.(check bool) "first join is the Cartesian product" true first.Executor.cartesian;
    Alcotest.(check int) "product cardinality" (200 * 50) first.Executor.actual_rows;
    Alcotest.(check bool) "second applies predicates" false second.Executor.cartesian;
    Alcotest.(check int) "final set" 0b111 second.Executor.set
  | _ -> Alcotest.fail "expected two trace entries");
  (* Guard on runaway products. *)
  let big_catalog = Catalog.of_list [ ("a", 3000.0); ("b", 3000.0) ] in
  let big_graph = Join_graph.no_predicates ~n:2 in
  let rng = Rng.create ~seed:3 in
  let big = Datagen.generate ~rng big_catalog big_graph in
  Alcotest.check_raises "guard"
    (Failure "Executor: Cartesian product of 3000 x 3000 rows exceeds the 2000000-row guard")
    (fun () -> ignore (Executor.run big Plan.(Join (Leaf 0, Leaf 1))))

let test_estimates_track_actuals () =
  (* On a two-way equi-join the estimate |R||S|/d has relative standard
     error ~ 1/sqrt(|result|); with ~400 expected output rows, 3 sigma
     is ~15%. Run on realized statistics so rounding is not a factor. *)
  let catalog = Catalog.of_list [ ("r", 2000.0); ("s", 2000.0) ] in
  let graph = Join_graph.of_edges ~n:2 [ (0, 1, 1e-4) ] in
  let rng = Rng.create ~seed:17 in
  let data = Datagen.generate ~rng catalog graph in
  let comparisons = Executor.estimate_vs_actual data Plan.(Join (Leaf 0, Leaf 1)) in
  match comparisons with
  | [ c ] ->
    Test_helpers.check_float "estimate is 400" 400.0 c.Executor.estimated;
    let rel_err = Float.abs (c.Executor.actual -. c.Executor.estimated) /. c.Executor.estimated in
    Alcotest.(check bool)
      (Printf.sprintf "actual %.0f within 15%% of estimate" c.Executor.actual)
      true (rel_err < 0.15)
  | _ -> Alcotest.fail "expected one comparison"

let test_operator_work_accounting () =
  let left = Array.init 20 (fun i -> [| i |]) in
  let right = Array.init 30 (fun i -> [| i |]) in
  let keys = [ { Operators.left_col = 0; right_col = 0 } ] in
  let work = Operators.fresh_work () in
  Operators.set_work_sink (Some work);
  let out = Operators.nested_loop_join ~left ~right ~keys in
  Operators.set_work_sink None;
  (* Nested loops visit |L| * |R| inner tuples, one key comparison each. *)
  Alcotest.(check int) "tuple visits" 600 work.Operators.tuple_visits;
  Alcotest.(check int) "comparisons" 600 work.Operators.comparisons;
  Alcotest.(check int) "output rows accounted" (Array.length out) work.Operators.output_rows;
  (* With the sink disabled, nothing accumulates further. *)
  let before = work.Operators.tuple_visits in
  ignore (Operators.nested_loop_join ~left ~right ~keys);
  Alcotest.(check int) "sink off" before work.Operators.tuple_visits

let test_run_with_work () =
  let data, _, _ = chain_dataset () in
  let plan = Plan.(Join (Join (Leaf 0, Leaf 1), Leaf 2)) in
  let result_plain = Executor.run ~algorithm:Executor.Nested_loop data plan in
  let result, work = Executor.run_with_work ~algorithm:Executor.Nested_loop data plan in
  Alcotest.(check int) "same result" result_plain.Executor.rows result.Executor.rows;
  (* First join probes 200*100; second probes |join1| * 50. *)
  let join1_rows =
    match result.Executor.trace with e :: _ -> e.Executor.actual_rows | [] -> 0
  in
  Alcotest.(check int) "NL visits add up" ((200 * 100) + (join1_rows * 50))
    work.Operators.tuple_visits;
  (* Sort-merge does far fewer comparisons than nested loops here. *)
  let _, sm_work = Executor.run_with_work ~algorithm:Executor.Sort_merge data plan in
  Alcotest.(check bool) "sort-merge compares less" true
    (sm_work.Operators.comparisons < work.Operators.comparisons)

let test_algorithm_names () =
  Alcotest.(check string) "hash" "hash" (Executor.algorithm_name Executor.Hash);
  Alcotest.(check bool) "kdnl maps to nested loop" true
    (Executor.algorithm_of_name "kdnl" = Some Executor.Nested_loop);
  Alcotest.(check bool) "ksm maps to sort-merge" true
    (Executor.algorithm_of_name "ksm" = Some Executor.Sort_merge);
  Alcotest.(check bool) "unknown" true (Executor.algorithm_of_name "quantum" = None)

let prop_executor_agrees_across_plans_and_algorithms =
  QCheck2.Test.make ~count:25
    ~name:"any two plans and algorithms for one query agree on the result size"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 3 + Rng.int rng 2 in
      let catalog = Catalog.of_cards (Array.init n (fun _ -> float_of_int (20 + Rng.int rng 60))) in
      (* Connected random graph: a chain plus random extra edges, sized to
         keep intermediate results small. *)
      let edges = ref [] in
      for i = 0 to n - 2 do
        edges := (i, i + 1, 0.05 +. Rng.float rng 0.1) :: !edges
      done;
      if Rng.bool rng && n > 2 then edges := (0, n - 1, 0.1) :: !edges;
      let graph = Join_graph.of_edges ~n !edges in
      let data = Datagen.generate ~rng catalog graph in
      let full = Relset.full n in
      let p1 = Blitz_baselines.Transform.random_bushy rng full in
      let p2 = Blitz_baselines.Transform.random_bushy rng full in
      let r1 = (Executor.run ~algorithm:Executor.Hash data p1).Executor.rows in
      let r2 = (Executor.run ~algorithm:Executor.Sort_merge data p2).Executor.rows in
      let r3 = (Executor.run ~algorithm:Executor.Nested_loop data p1).Executor.rows in
      r1 = r2 && r1 = r3)

let suite =
  [
    Alcotest.test_case "table basics" `Quick test_table_basics;
    Alcotest.test_case "table validation" `Quick test_table_validation;
    Alcotest.test_case "operators agree on a fixture" `Quick test_operators_agree;
    Alcotest.test_case "operators as Cartesian product" `Quick test_cartesian_product_operator;
    Alcotest.test_case "datagen shapes" `Quick test_datagen_shapes;
    Alcotest.test_case "realized statistics" `Quick test_realized_statistics;
    Alcotest.test_case "executor: algorithms agree" `Quick test_executor_algorithms_agree;
    Alcotest.test_case "executor: join order invariance" `Quick test_executor_plan_shape_invariance;
    Alcotest.test_case "executor: trace and guards" `Quick test_executor_trace;
    Alcotest.test_case "estimates track actuals" `Quick test_estimates_track_actuals;
    Alcotest.test_case "operator work accounting" `Quick test_operator_work_accounting;
    Alcotest.test_case "run_with_work" `Quick test_run_with_work;
    Alcotest.test_case "algorithm names" `Quick test_algorithm_names;
    QCheck_alcotest.to_alcotest prop_operators_agree_random;
    QCheck_alcotest.to_alcotest prop_executor_agrees_across_plans_and_algorithms;
  ]

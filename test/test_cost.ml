(* Cost models: paper formulas, decomposition invariant, min-of combination. *)

module Cost_model = Blitz_cost.Cost_model

let check_float = Test_helpers.check_float

let test_naive () =
  let m = Cost_model.naive in
  check_float "kappa0 = |out|" 1234.0 (Cost_model.kappa m ~out:1234.0 ~lcard:10.0 ~rcard:20.0);
  check_float "k_prime" 1234.0 (m.Cost_model.k_prime 1234.0);
  Alcotest.(check bool) "dprime zero" true m.Cost_model.dprime_is_zero

let test_sort_merge () =
  let m = Cost_model.sort_merge in
  (* |L|(1+log|L|) + |R|(1+log|R|), appendix. *)
  let expected l r = (l *. (1.0 +. log l)) +. (r *. (1.0 +. log r)) in
  check_float "ksm formula" (expected 100.0 50.0)
    (Cost_model.kappa m ~out:9999.0 ~lcard:100.0 ~rcard:50.0);
  (* output-independence *)
  check_float "ksm ignores out" (expected 100.0 50.0)
    (Cost_model.kappa m ~out:1.0 ~lcard:100.0 ~rcard:50.0);
  (* sub-1 cardinalities contribute linearly, never negatively *)
  check_float "tiny operand guard" (0.5 +. 0.25)
    (Cost_model.kappa m ~out:1.0 ~lcard:0.5 ~rcard:0.25);
  check_float "aux memo" (100.0 *. (1.0 +. log 100.0)) (m.Cost_model.aux 100.0)

let test_disk_nested_loops () =
  let m = Cost_model.kdnl in
  (* 2|out|/K + |L||R|/(K^2 (M-1)) + min/K with K=10, M=100. *)
  let expected out l r = (2.0 *. out /. 10.0) +. (l *. r /. (100.0 *. 99.0)) +. (Float.min l r /. 10.0) in
  check_float "kdnl formula" (expected 500.0 100.0 50.0)
    (Cost_model.kappa m ~out:500.0 ~lcard:100.0 ~rcard:50.0);
  check_float "kdnl symmetric"
    (Cost_model.kappa m ~out:500.0 ~lcard:100.0 ~rcard:50.0)
    (Cost_model.kappa m ~out:500.0 ~lcard:50.0 ~rcard:100.0);
  let custom = Cost_model.disk_nested_loops ~blocking_factor:5.0 ~memory_blocks:11.0 () in
  check_float "custom parameters"
    ((2.0 *. 500.0 /. 5.0) +. (100.0 *. 50.0 /. (25.0 *. 10.0)) +. (50.0 /. 5.0))
    (Cost_model.kappa custom ~out:500.0 ~lcard:100.0 ~rcard:50.0);
  Alcotest.check_raises "bad K" (Invalid_argument "Cost_model.disk_nested_loops: K must be positive")
    (fun () -> ignore (Cost_model.disk_nested_loops ~blocking_factor:0.0 ()));
  Alcotest.check_raises "bad M" (Invalid_argument "Cost_model.disk_nested_loops: M must exceed 1")
    (fun () -> ignore (Cost_model.disk_nested_loops ~memory_blocks:1.0 ()))

let test_min_of () =
  let m = Cost_model.min_of Cost_model.sort_merge Cost_model.kdnl in
  Alcotest.(check string) "name" "min:ksm,kdnl" m.Cost_model.name;
  let sm = Cost_model.kappa Cost_model.sort_merge ~out:500.0 ~lcard:100.0 ~rcard:50.0 in
  let dnl = Cost_model.kappa Cost_model.kdnl ~out:500.0 ~lcard:100.0 ~rcard:50.0 in
  check_float "min of the two" (Float.min sm dnl)
    (Cost_model.kappa m ~out:500.0 ~lcard:100.0 ~rcard:50.0)

let test_of_string () =
  let ok name expected =
    match Cost_model.of_string name with
    | Ok m -> Alcotest.(check string) name expected m.Cost_model.name
    | Error e -> Alcotest.fail e
  in
  ok "k0" "k0";
  ok "naive" "k0";
  ok "ksm" "ksm";
  ok "kdnl" "kdnl";
  ok "min:ksm,kdnl" "min:ksm,kdnl";
  Alcotest.(check bool) "unknown rejected" true (Result.is_error (Cost_model.of_string "k99"))

(* The decomposition invariant (Section 3.2): kappa = kappa' + kappa''
   with the aux memo honored — for every model on random inputs. *)
let prop_decomposition =
  QCheck2.Test.make ~count:500 ~name:"kappa = kappa' + kappa'' with memoized aux"
    QCheck2.Gen.(
      tup4 (oneofl Cost_model.all_paper) (float_range 0.01 1e6) (float_range 0.01 1e6)
        (float_range 0.01 1e9))
    (fun (m, lcard, rcard, out) ->
      let direct = Cost_model.kappa m ~out ~lcard ~rcard in
      let split =
        m.Cost_model.k_prime out
        +. m.Cost_model.k_dprime ~out ~lcard ~rcard ~laux:(m.Cost_model.aux lcard)
             ~raux:(m.Cost_model.aux rcard)
      in
      Blitz_util.Float_more.approx_equal ~rel:1e-12 direct split)

let prop_nonnegative =
  QCheck2.Test.make ~count:500 ~name:"kappa'' is non-negative (optimizer precondition)"
    QCheck2.Gen.(
      tup4 (oneofl Cost_model.all_paper) (float_range 1e-6 1e6) (float_range 1e-6 1e6)
        (float_range 1e-6 1e9))
    (fun (m, lcard, rcard, out) ->
      m.Cost_model.k_dprime ~out ~lcard ~rcard ~laux:(m.Cost_model.aux lcard)
        ~raux:(m.Cost_model.aux rcard)
      >= 0.0
      && m.Cost_model.k_prime out >= 0.0)

let suite =
  [
    Alcotest.test_case "naive model" `Quick test_naive;
    Alcotest.test_case "sort-merge model" `Quick test_sort_merge;
    Alcotest.test_case "disk-nested-loops model" `Quick test_disk_nested_loops;
    Alcotest.test_case "min-of combination" `Quick test_min_of;
    Alcotest.test_case "of_string" `Quick test_of_string;
    QCheck_alcotest.to_alcotest prop_decomposition;
    QCheck_alcotest.to_alcotest prop_nonnegative;
  ]

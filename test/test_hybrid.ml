(* The DP-inside-randomized-search hybrid (the paper's Section 7 future
   work). *)

open Test_helpers
module Hybrid = Blitz_hybrid.Hybrid
module Blitzsplit = Blitz_core.Blitzsplit
module B = Blitz_baselines

let fig3 = figure3_graph ~sab:0.1 ~sac:0.2 ~sbc:0.3 ~sad:0.4

let test_small_instances_reach_optimum () =
  (* With window >= n the first descent re-optimizes the whole plan
     exactly, so the hybrid must equal blitzsplit. *)
  let rng = Rng.create ~seed:11 in
  let (plan, cost), stats =
    Hybrid.optimize ~rng ~window:4 ~kicks:0 Cost_model.kdnl abcd_catalog fig3
  in
  let optimum = Blitzsplit.best_cost (Blitzsplit.optimize_join Cost_model.kdnl abcd_catalog fig3) in
  Test_helpers.check_float ~rel:1e-9 "optimal" optimum cost;
  Alcotest.(check bool) "valid plan" true (Result.is_ok (Plan.validate ~n:4 plan));
  Alcotest.(check bool) "did some window work" true (stats.Hybrid.windows_reoptimized > 0)

let test_stats_accounting () =
  let rng = Rng.create ~seed:3 in
  let _, stats = Hybrid.optimize ~rng ~window:3 ~kicks:5 Cost_model.naive abcd_catalog fig3 in
  Alcotest.(check int) "kicks run" 5 stats.Hybrid.kicks;
  Alcotest.(check bool) "improvements <= reopts" true
    (stats.Hybrid.windows_improved <= stats.Hybrid.windows_reoptimized)

let test_invalid_arguments () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "window too small"
    (Invalid_argument "Hybrid.optimize: window must be at least 2") (fun () ->
      ignore (Hybrid.optimize ~rng ~window:1 Cost_model.naive abcd_catalog fig3));
  let bad_start = Plan.Leaf 0 in
  Alcotest.check_raises "partial start plan"
    (Invalid_argument "Hybrid.optimize: start plan must cover all catalog relations") (fun () ->
      ignore (Hybrid.optimize ~rng ~start:bad_start Cost_model.naive abcd_catalog fig3))

let prop_hybrid_sound =
  QCheck2.Test.make ~count:40 ~name:"hybrid returns valid plans never better than optimal"
    ~print:problem_print (problem_gen ~max_n:8)
    (fun p ->
      let rng = Rng.create ~seed:(p.seed + 23) in
      let (plan, cost), _ = Hybrid.optimize ~rng ~window:4 ~kicks:6 p.model p.catalog p.graph in
      let optimum = Blitzsplit.best_cost (Blitzsplit.optimize_join p.model p.catalog p.graph) in
      let n = Catalog.n p.catalog in
      Relset.equal (Plan.relations plan) (Relset.full n)
      && cost >= optimum *. (1.0 -. 1e-6)
      && Blitz_util.Float_more.approx_equal ~rel:1e-6 cost
           (Plan.cost p.model p.catalog p.graph plan))

let prop_hybrid_never_worse_than_greedy =
  QCheck2.Test.make ~count:30 ~name:"hybrid never ends worse than its greedy start"
    ~print:problem_print (problem_gen ~max_n:9)
    (fun p ->
      let rng = Rng.create ~seed:(p.seed + 31) in
      let (_, cost), _ = Hybrid.optimize ~rng ~kicks:4 p.model p.catalog p.graph in
      let _, greedy_cost = B.Greedy.optimize p.model p.catalog p.graph in
      cost <= greedy_cost *. (1.0 +. 1e-9))

let prop_window_reopt_is_monotone =
  (* Each accepted window re-optimization lowers cost, so the final cost
     never exceeds the start plan's cost, whatever the start. *)
  QCheck2.Test.make ~count:40 ~name:"hybrid never ends worse than an arbitrary start plan"
    ~print:problem_print (problem_gen ~max_n:8)
    (fun p ->
      let n = Catalog.n p.catalog in
      let rng = Rng.create ~seed:(p.seed + 41) in
      let start = B.Transform.random_bushy rng (Relset.full n) in
      let start_cost = Plan.cost p.model p.catalog p.graph start in
      let (_, cost), _ = Hybrid.optimize ~rng ~start ~kicks:3 p.model p.catalog p.graph in
      cost <= start_cost *. (1.0 +. 1e-9))

let suite =
  [
    Alcotest.test_case "full-window hybrid is exact" `Quick test_small_instances_reach_optimum;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "argument validation" `Quick test_invalid_arguments;
    QCheck_alcotest.to_alcotest prop_hybrid_sound;
    QCheck_alcotest.to_alcotest prop_hybrid_never_worse_than_greedy;
    QCheck_alcotest.to_alcotest prop_window_reopt_is_monotone;
  ]

(* Differential bit-identity for the monomorphized split kernels.

   The split-loop refactor (specialized per-model loop bodies, operand
   reads through the interleaved pair column) claims EXACT equivalence
   with the pre-refactor kernel retained as [Split_loop.Reference]: not
   approximately-equal costs but identical IEEE bit patterns, identical
   best_lhs links, and identical execution counters — the float
   expressions were transplanted associativity-and-all, and this suite
   is what holds that claim down.  Random problems sweep topology
   density, all three paper models plus an Opaque min-of combination
   (the closure fallback body), finite and infinite thresholds (the
   skip and infeasible paths), against the sequential driver and the
   rank-parallel driver at 1, 2 and 4 domains. *)

open Test_helpers
module Blitzsplit = Blitz_core.Blitzsplit
module Parallel_blitzsplit = Blitz_parallel.Parallel_blitzsplit
module Dp_table = Blitz_core.Dp_table
module Split_loop = Blitz_core.Split_loop
module Counters = Blitz_core.Counters
module Rng = Blitz_util.Rng

type kernel_problem = {
  catalog : Catalog.t;
  graph : Join_graph.t;
  model : Cost_model.t;
  threshold_factor : float option;
      (* None: unconstrained; Some f: threshold = f * unconstrained
         optimum, exercising skips (f < 1 makes the run infeasible). *)
  seed : int;
}

let pp_kernel_problem ppf p =
  Format.fprintf ppf "seed=%d n=%d model=%s edges=%d threshold_factor=%s" p.seed
    (Catalog.n p.catalog) p.model.Cost_model.name
    (Join_graph.edge_count p.graph)
    (match p.threshold_factor with None -> "inf" | Some f -> string_of_float f)

let kernel_problem_gen ~max_n =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Rng.create ~seed in
        let n = 2 + Rng.int rng (max_n - 1) in
        let catalog = random_catalog rng ~n ~lo:1.0 ~hi:1e4 in
        let edge_prob = Rng.float rng 1.0 in
        let graph = random_graph rng ~n ~edge_prob ~sel_lo:1e-4 ~sel_hi:1.0 in
        let model =
          match Rng.int rng 4 with
          | 0 -> Cost_model.naive
          | 1 -> Cost_model.sort_merge
          | 2 -> Cost_model.kdnl
          | _ -> Cost_model.min_of Cost_model.sort_merge Cost_model.kdnl
        in
        let threshold_factor =
          match Rng.int rng 3 with 0 -> None | 1 -> Some 0.5 | _ -> Some 2.0
        in
        { catalog; graph; model; threshold_factor; seed })
      (int_bound 1_000_000))

(* One full DP pass with the Reference kernel: the pre-refactor ground
   truth, same enumeration order as the sequential driver. *)
let reference_pass model catalog graph ~threshold =
  let n = Catalog.n catalog in
  let tbl = Dp_table.create ~with_pi_fan:true n in
  let ctr = Counters.create () in
  Split_loop.init_singletons tbl model catalog;
  for s = 3 to (1 lsl n) - 1 do
    if s land (s - 1) <> 0 then begin
      Split_loop.compute_properties_join tbl model graph s;
      Split_loop.Reference.find_best_split tbl model ctr ~threshold s
    end
  done;
  (tbl, ctr)

let bits = Int64.bits_of_float

let check_against ~what (reft : Dp_table.t) (refc : Counters.t) (tbl : Dp_table.t)
    (ctr : Counters.t) =
  let fail fmt = QCheck2.Test.fail_reportf ("%s: " ^^ fmt) what in
  for s = 1 to Dp_table.size reft - 1 do
    if bits reft.Dp_table.cost.(s) <> bits tbl.Dp_table.cost.(s) then
      fail "cost bits diverged at subset %d: %.17g vs %.17g" s reft.Dp_table.cost.(s)
        tbl.Dp_table.cost.(s);
    if reft.Dp_table.best_lhs.(s) <> tbl.Dp_table.best_lhs.(s) then
      fail "best_lhs diverged at subset %d: %d vs %d" s reft.Dp_table.best_lhs.(s)
        tbl.Dp_table.best_lhs.(s);
    (* The interleaved pair rows must mirror the columns exactly. *)
    if bits tbl.Dp_table.pair.(2 * s) <> bits tbl.Dp_table.cost.(s) then
      fail "pair cost out of sync at subset %d" s;
    if bits tbl.Dp_table.pair.((2 * s) + 1) <> bits tbl.Dp_table.card.(s) then
      fail "pair card out of sync at subset %d" s
  done;
  let counter name a b = if a <> b then fail "counter %s diverged: %d vs %d" name a b in
  counter "subsets" refc.Counters.subsets ctr.Counters.subsets;
  counter "loop_iters" refc.Counters.loop_iters ctr.Counters.loop_iters;
  counter "operand_sums" refc.Counters.operand_sums ctr.Counters.operand_sums;
  counter "dprime_evals" refc.Counters.dprime_evals ctr.Counters.dprime_evals;
  counter "improvements" refc.Counters.improvements ctr.Counters.improvements;
  counter "threshold_skips" refc.Counters.threshold_skips ctr.Counters.threshold_skips;
  counter "infeasible" refc.Counters.infeasible ctr.Counters.infeasible

let prop_kernels_bit_identical =
  QCheck2.Test.make ~count:150
    ~name:"specialized kernels bit-identical to Reference (drivers x domains x thresholds)"
    ~print:(fun p -> Format.asprintf "%a" pp_kernel_problem p)
    (kernel_problem_gen ~max_n:8)
    (fun p ->
      let threshold =
        match p.threshold_factor with
        | None -> Float.infinity
        | Some f ->
          let unconstrained, _ =
            reference_pass p.model p.catalog p.graph ~threshold:Float.infinity
          in
          let best = unconstrained.Dp_table.cost.(Dp_table.size unconstrained - 1) in
          Float.max (f *. best) Float.min_float
      in
      let reft, refc = reference_pass p.model p.catalog p.graph ~threshold in
      let seq = Blitzsplit.optimize_join ~threshold p.model p.catalog p.graph in
      check_against ~what:"sequential" reft refc seq.Blitzsplit.table seq.Blitzsplit.counters;
      List.iter
        (fun d ->
          let par =
            Parallel_blitzsplit.optimize_join ~num_domains:d ~min_parallel_n:2 ~threshold
              p.model p.catalog p.graph
          in
          check_against
            ~what:(Printf.sprintf "parallel d=%d" d)
            reft refc par.Blitzsplit.table par.Blitzsplit.counters)
        [ 1; 2; 4 ];
      true)

let test_variant_names () =
  Alcotest.(check string) "naive" "zero" (Split_loop.variant Cost_model.naive);
  Alcotest.(check string) "sort-merge" "sum-aux" (Split_loop.variant Cost_model.sort_merge);
  Alcotest.(check string) "dnl" "dnl-paired" (Split_loop.variant Cost_model.kdnl);
  Alcotest.(check string) "min-of" "general"
    (Split_loop.variant (Cost_model.min_of Cost_model.naive Cost_model.kdnl))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_kernels_bit_identical;
    Alcotest.test_case "kernel variant names" `Quick test_variant_names;
  ]

(* Blitz_engine: the session/arena layer and the optimizer registry.

   The engine's core claim is that session reuse is unobservable in the
   results: any query run through a session's arena-pooled table and
   recycled counters yields bit-identical cost, plan and counter totals
   to a fresh-allocation run — for every registered optimizer, across
   arbitrary query sequences (the arena shrinking and growing between
   queries), and at every domain count.

   BLITZ_TEST_DOMAINS=N adds N to the domain axis, as in
   test_parallel.ml. *)

open Test_helpers
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Arena = Blitz_core.Arena
module Counters = Blitz_core.Counters
module Dp_table = Blitz_core.Dp_table
module Blitzsplit = Blitz_core.Blitzsplit
module Registry = Blitz_engine.Registry
module Engine = Blitz_engine.Engine
module B = Blitz_baselines

let env_domains =
  match Sys.getenv_opt "BLITZ_TEST_DOMAINS" with
  | None -> []
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 && d <= 128 -> [ d ]
    | _ -> failwith (Printf.sprintf "BLITZ_TEST_DOMAINS=%S is not a domain count in [1, 128]" s))

let domain_axis = List.sort_uniq compare ([ 1; 2; 4 ] @ env_domains)

let counters_equal a b =
  a.Counters.subsets = b.Counters.subsets
  && a.Counters.loop_iters = b.Counters.loop_iters
  && a.Counters.operand_sums = b.Counters.operand_sums
  && a.Counters.dprime_evals = b.Counters.dprime_evals
  && a.Counters.improvements = b.Counters.improvements
  && a.Counters.threshold_skips = b.Counters.threshold_skips
  && a.Counters.infeasible = b.Counters.infeasible
  && a.Counters.passes = b.Counters.passes

let outcome_equal (a : Registry.outcome) (b : Registry.outcome) =
  compare a.Registry.cost b.Registry.cost = 0
  && (match (a.Registry.plan, b.Registry.plan) with
     | Some p, Some q -> Plan.equal p q
     | None, None -> true
     | _ -> false)
  && a.Registry.passes = b.Registry.passes
  && compare a.Registry.final_threshold b.Registry.final_threshold = 0
  && Option.equal counters_equal a.Registry.counters b.Registry.counters

(* {1 The property: session reuse is bit-identical to fresh runs} *)

(* Three problems per case, so within one session the arena grows and
   shrinks across queries, and every third problem drops the graph
   (pure Cartesian-product optimization — the no-pi_fan table path). *)
let sequence_gen =
  QCheck2.Gen.map
    (fun seeds -> List.map (fun seed -> (seed, seed mod 3 = 2)) seeds)
    (QCheck2.Gen.list_size (QCheck2.Gen.return 3) (QCheck2.Gen.int_bound 1_000_000))

let problem_of_seed (seed, product) =
  let rng = Blitz_util.Rng.create ~seed in
  let n = 2 + Blitz_util.Rng.int rng 6 in
  let catalog = random_catalog rng ~n ~lo:1.0 ~hi:1e4 in
  let graph =
    random_graph rng ~n ~edge_prob:(Blitz_util.Rng.float rng 1.0) ~sel_lo:1e-4 ~sel_hi:1.0
  in
  if product then Registry.problem catalog else Registry.problem ~graph catalog

let fresh_outcome ~optimizer ~num_domains model p =
  let o =
    Registry.optimize ~optimizer (Registry.ctx ~num_domains ~counters:(Counters.create ()) model) p
  in
  { o with Registry.table = None }

let test_session_bit_identical =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:20 ~name:"session = fresh for exact/thresholded at any width"
       sequence_gen (fun seeds ->
         let problems = List.map problem_of_seed seeds in
         let model = Cost_model.kdnl in
         List.for_all
           (fun num_domains ->
             List.for_all
               (fun optimizer ->
                 let fresh = List.map (fresh_outcome ~optimizer ~num_domains model) problems in
                 let session_outcomes =
                   Engine.with_session ~model ~num_domains (fun session ->
                       Engine.optimize_many ~optimizer session (List.to_seq problems))
                 in
                 List.length fresh = List.length session_outcomes
                 && List.for_all2 outcome_equal fresh session_outcomes)
               [ "exact"; "thresholded" ])
           domain_axis))

let test_session_every_optimizer () =
  (* One-shot parity for every registry entry on a fixed 5-relation
     problem (small enough for the bruteforce oracle).  The session runs
     each optimizer twice so the second run exercises a warm arena. *)
  let catalog = random_catalog (Blitz_util.Rng.create ~seed:7) ~n:5 ~lo:1.0 ~hi:1e3 in
  (* A chain: a tree, so the tree-only entries participate too. *)
  let graph =
    Join_graph.of_edges ~n:5 [ (0, 1, 0.1); (1, 2, 0.05); (2, 3, 0.2); (3, 4, 0.01) ]
  in
  let prob = Registry.problem ~graph catalog in
  let model = Cost_model.kdnl in
  let is_tree = B.Ikkbz.is_tree graph in
  Engine.with_session ~model (fun session ->
      List.iter
        (fun (e : Registry.entry) ->
          match Registry.eligible e ~n:5 ~is_tree with
          | Error _ -> ()
          | Ok () ->
            let fresh = fresh_outcome ~optimizer:e.Registry.name ~num_domains:1 model prob in
            let warm =
              ignore (Engine.optimize ~optimizer:e.Registry.name session prob);
              let o = Engine.optimize ~optimizer:e.Registry.name session prob in
              { o with Registry.table = None; counters = Option.map Counters.copy o.Registry.counters }
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s: warm session = fresh" e.Registry.name)
              true (outcome_equal fresh warm))
        (Registry.all ()))

(* {1 Arena mechanics} *)

let test_reset_hides_stale_entries () =
  (* After a 6-relation query, a 4-relation acquire from the same arena
     must present a fully reset table: no card/cost/best_lhs from the
     larger query may leak into the smaller one's slot range. *)
  let arena = Arena.create () in
  let model = Cost_model.kdnl in
  let big = random_catalog (Blitz_util.Rng.create ~seed:11) ~n:6 ~lo:1.0 ~hi:1e3 in
  let big_graph = random_graph (Blitz_util.Rng.create ~seed:12) ~n:6 ~edge_prob:0.8 ~sel_lo:0.01 ~sel_hi:1.0 in
  ignore (Blitzsplit.optimize_join ~arena model big big_graph);
  let table = Arena.acquire arena 4 in
  Alcotest.(check int) "logical n" 4 table.Dp_table.n;
  Alcotest.(check int) "capacity kept from the larger query" 6 (Dp_table.capacity table);
  for s = 1 to 15 do
    Alcotest.(check (float 0.0)) (Printf.sprintf "card[%d] reset" s) 0.0 (Dp_table.card table s);
    Alcotest.(check bool)
      (Printf.sprintf "cost[%d] reset" s)
      true
      (Dp_table.cost table s = Float.infinity);
    Alcotest.(check int) (Printf.sprintf "best_lhs[%d] reset" s) 0 (Dp_table.best_lhs table s)
  done

let test_arena_growth_accounting () =
  let arena = Arena.create () in
  Alcotest.(check int) "empty arena holds no bytes" 0 (Arena.resident_bytes arena);
  let _ = Arena.acquire arena 4 in
  let after4 = Arena.resident_bytes arena in
  Alcotest.(check int) "resident = estimate at capacity"
    (Dp_table.estimate_bytes ~n:4 ()) after4;
  (* A smaller acquire must not shrink the high-water mark... *)
  let _ = Arena.acquire arena 3 in
  Alcotest.(check int) "high-water kept on small acquire" after4 (Arena.resident_bytes arena);
  (* ...and bytes_after quotes the would-be footprint before growing. *)
  Alcotest.(check int) "bytes_after quotes growth"
    (Dp_table.estimate_bytes ~n:10 ())
    (Arena.bytes_after arena ~n:10 ());
  Alcotest.(check int) "bytes_after quotes current capacity for small n" after4
    (Arena.bytes_after arena ~n:2 ());
  let _ = Arena.acquire arena 10 in
  Alcotest.(check int) "grown" (Dp_table.estimate_bytes ~n:10 ()) (Arena.resident_bytes arena);
  Alcotest.(check int) "three acquires" 3 (Arena.acquires arena);
  Alcotest.(check int) "two sizings (initial + growth)" 2 (Arena.grows arena);
  Arena.clear arena;
  Alcotest.(check int) "cleared" 0 (Arena.resident_bytes arena)

let test_estimate_bytes_saturates () =
  Alcotest.(check int) "n=50 saturates" max_int (Dp_table.estimate_bytes ~n:50 ());
  Alcotest.(check int) "56 B/slot with fan" (56 * 1024) (Dp_table.estimate_bytes ~n:10 ());
  Alcotest.(check int) "48 B/slot without fan" (48 * 1024)
    (Dp_table.estimate_bytes ~with_pi_fan:false ~n:10 ())

(* {1 Batch API} *)

let test_optimize_many_matches_sequential () =
  let model = Cost_model.kdnl in
  let problems = List.map problem_of_seed [ (100, false); (101, true); (102, false) ] in
  Engine.with_session ~model (fun session ->
      let batch = Engine.optimize_many session (List.to_seq problems) in
      let sequential =
        (* Detach each outcome as it is captured: session outcomes alias
           the arena's counters, which the next query resets. *)
        List.map
          (fun p ->
            let o = Engine.optimize session p in
            { o with Registry.table = None; counters = Option.map Counters.copy o.Registry.counters })
          problems
      in
      Alcotest.(check int) "all completed" (List.length problems) (List.length batch);
      List.iter2
        (fun b s ->
          Alcotest.(check bool) "batch outcome = sequential outcome" true (outcome_equal b s))
        batch sequential;
      List.iter
        (fun (o : Registry.outcome) ->
          Alcotest.(check bool) "batch outcomes are detached" true (o.Registry.table = None))
        batch)

let test_optimize_many_interrupt_prefix () =
  let model = Cost_model.kdnl in
  let p1 = problem_of_seed (200, false) in
  let p2 = problem_of_seed (201, false) in
  (* The interrupt is probed every 64 subsets, so the aborted query
     needs a large enough n for the probe to fire at all. *)
  let p3 =
    let rng = Blitz_util.Rng.create ~seed:202 in
    let catalog = random_catalog rng ~n:10 ~lo:1.0 ~hi:1e4 in
    let graph = random_graph rng ~n:10 ~edge_prob:0.5 ~sel_lo:1e-4 ~sel_hi:1.0 in
    Registry.problem ~graph catalog
  in
  let fire = ref false in
  (* The flag flips when the batch sequence yields the third problem, so
     the interrupt (probed inside the DP) aborts query 3 mid-run. *)
  let problems () =
    Seq.Cons
      ( p1,
        fun () ->
          Seq.Cons
            ( p2,
              fun () ->
                fire := true;
                Seq.Cons (p3, Seq.empty) ) )
  in
  Engine.with_session ~model (fun session ->
      let batch = Engine.optimize_many ~interrupt:(fun () -> !fire) session problems in
      Alcotest.(check int) "completed prefix returned" 2 (List.length batch);
      let fresh1 = fresh_outcome ~optimizer:"exact" ~num_domains:1 model p1 in
      Alcotest.(check bool) "prefix in order and intact" true
        (outcome_equal fresh1 (List.hd batch)))

let test_session_close () =
  let session = Engine.create () in
  let p = problem_of_seed (300, false) in
  ignore (Engine.optimize session p);
  Engine.close session;
  Alcotest.check_raises "closed session rejects queries"
    (Invalid_argument "Engine.optimize: session is closed") (fun () ->
      ignore (Engine.optimize session p))

(* {1 Registry metadata} *)

let test_registry_metadata () =
  let names = Registry.names () in
  Alcotest.(check bool) "names unique" true
    (List.length names = List.length (List.sort_uniq compare names));
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true (Option.is_some (Registry.find name)))
    [ "exact"; "thresholded"; "hybrid"; "ikkbz"; "greedy"; "bruteforce" ];
  let caps name = (Registry.find_exn name).Registry.caps in
  Alcotest.(check bool) "greedy is deadline-exempt" true (caps "greedy").Registry.deadline_exempt;
  Alcotest.(check bool) "ikkbz is tree-only" true (caps "ikkbz").Registry.tree_only;
  Alcotest.(check bool) "exact is exact" true (caps "exact").Registry.exact;
  Alcotest.(check (option int))
    "bruteforce capped at its oracle limit"
    (Some B.Bruteforce.max_relations)
    (caps "bruteforce").Registry.max_n;
  (match (caps "exact").Registry.table_bytes with
  | Some f -> Alcotest.(check int) "exact table estimate" (Dp_table.estimate_bytes ~n:12 ()) (f ~n:12)
  | None -> Alcotest.fail "exact must advertise a table footprint");
  Alcotest.(check bool) "eligible rejects oversized n" true
    (Result.is_error
       (Registry.eligible (Registry.find_exn "exact") ~n:(Dp_table.max_relations + 1) ~is_tree:false));
  Alcotest.(check bool) "eligible rejects non-tree for ikkbz" true
    (Result.is_error (Registry.eligible (Registry.find_exn "ikkbz") ~n:5 ~is_tree:false));
  (match Registry.find "no-such-optimizer" with
  | Some _ -> Alcotest.fail "found a ghost"
  | None -> ());
  Alcotest.(check bool) "find_exn raises on unknown" true
    (try
       ignore (Registry.find_exn "no-such-optimizer");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "register rejects duplicates" true
    (try
       Registry.register (Registry.find_exn "exact");
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "every optimizer: warm session = fresh" `Quick test_session_every_optimizer;
    Alcotest.test_case "reset_in_place hides stale entries" `Quick test_reset_hides_stale_entries;
    Alcotest.test_case "arena growth accounting" `Quick test_arena_growth_accounting;
    Alcotest.test_case "estimate_bytes" `Quick test_estimate_bytes_saturates;
    Alcotest.test_case "optimize_many = sequential optimizes" `Quick
      test_optimize_many_matches_sequential;
    Alcotest.test_case "optimize_many returns interrupt prefix" `Quick
      test_optimize_many_interrupt_prefix;
    Alcotest.test_case "closed session rejects queries" `Quick test_session_close;
    Alcotest.test_case "registry metadata" `Quick test_registry_metadata;
    test_session_bit_identical;
  ]

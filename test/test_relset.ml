(* Unit and property tests for the bitset substrate (paper Section 4). *)

module Relset = Blitz_bitset.Relset

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_construction () =
  check "empty" 0 Relset.empty;
  check "singleton 0" 1 (Relset.singleton 0);
  check "singleton 4" 16 (Relset.singleton 4);
  check "full 4" 15 (Relset.full 4);
  check "full 0" 0 (Relset.full 0);
  check "of_list" 0b1011 (Relset.of_list [ 0; 1; 3 ]);
  check "of_list dup" 0b1011 (Relset.of_list [ 0; 1; 3; 1 ]);
  check "add" 0b101 (Relset.add (Relset.singleton 0) 2);
  check "remove" 0b100 (Relset.remove 0b101 0);
  check "remove absent" 0b101 (Relset.remove 0b101 1)

let test_construction_errors () =
  Alcotest.check_raises "singleton negative" (Invalid_argument "Relset: relation index -1 outside [0, 62)")
    (fun () -> ignore (Relset.singleton (-1)));
  Alcotest.check_raises "full too wide" (Invalid_argument "Relset.full: width 63 outside [0, 62]")
    (fun () -> ignore (Relset.full 63));
  Alcotest.check_raises "min_elt empty" (Invalid_argument "Relset.min_elt: empty set") (fun () ->
      ignore (Relset.min_elt Relset.empty))

let test_queries () =
  check_bool "is_empty empty" true (Relset.is_empty Relset.empty);
  check_bool "is_empty nonempty" false (Relset.is_empty 0b10);
  check_bool "mem yes" true (Relset.mem 0b1010 1);
  check_bool "mem no" false (Relset.mem 0b1010 0);
  check_bool "mem out of range" false (Relset.mem 0b1010 63);
  check_bool "subset yes" true (Relset.subset 0b1010 0b1011);
  check_bool "subset self" true (Relset.subset 0b1010 0b1010);
  check_bool "subset no" false (Relset.subset 0b1010 0b0011);
  check_bool "proper_subset strict" true (Relset.proper_subset 0b1010 0b1011);
  check_bool "proper_subset self" false (Relset.proper_subset 0b1010 0b1010);
  check_bool "disjoint yes" true (Relset.disjoint 0b1010 0b0101);
  check_bool "disjoint no" false (Relset.disjoint 0b1010 0b0010);
  check "cardinal empty" 0 (Relset.cardinal Relset.empty);
  check "cardinal" 3 (Relset.cardinal 0b1011);
  check "cardinal full" 20 (Relset.cardinal (Relset.full 20));
  check_bool "is_singleton yes" true (Relset.is_singleton 0b1000);
  check_bool "is_singleton no" false (Relset.is_singleton 0b1001);
  check_bool "is_singleton empty" false (Relset.is_singleton Relset.empty);
  check "min_elt" 1 (Relset.min_elt 0b1010);
  check "max_elt" 3 (Relset.max_elt 0b1010);
  check "min_elt high" 40 (Relset.min_elt (Relset.singleton 40));
  check "lowest_bit" 0b10 (Relset.lowest_bit 0b1010);
  check "lowest_bit empty" 0 (Relset.lowest_bit Relset.empty)

let test_algebra () =
  check "union" 0b1110 (Relset.union 0b1010 0b0110);
  check "inter" 0b0010 (Relset.inter 0b1010 0b0110);
  check "diff" 0b1000 (Relset.diff 0b1010 0b0110)

let test_iteration () =
  Alcotest.(check (list int)) "to_list" [ 1; 3; 5 ] (Relset.to_list 0b101010);
  Alcotest.(check (list int)) "to_list empty" [] (Relset.to_list Relset.empty);
  check "fold sum" 9 (Relset.fold ( + ) 0 0b101010);
  check_bool "for_all odd" true (Relset.for_all (fun i -> i land 1 = 1) 0b101010);
  check_bool "exists 5" true (Relset.exists (fun i -> i = 5) 0b101010);
  check_bool "exists 0" false (Relset.exists (fun i -> i = 0) 0b101010)

(* The paper's worked dilation example: delta_11001(abc) = ab00c. *)
let test_dilate_contract_paper_example () =
  let mask = 0b11001 in
  check "dilate abc=101" 0b10001 (Relset.dilate ~mask 0b101);
  check "dilate abc=111" 0b11001 (Relset.dilate ~mask 0b111);
  check "dilate abc=010" 0b01000 (Relset.dilate ~mask 0b010);
  check "contract abcde=01111" 0b011 (Relset.contract ~mask 0b01111);
  (* gamma(delta(100) - delta(001)) = 011 (Equation 4 worked example). *)
  check "equation 4 example" 0b011
    (Relset.contract ~mask (Relset.dilate ~mask 0b100 - Relset.dilate ~mask 0b001))

let test_succ_subset_order () =
  (* Successive S_lhs values for S = 0b1011 must be the dilations of
     1, 2, ..., 2^|S|-2 in order. *)
  let s = 0b1011 in
  let expected = List.init 6 (fun i -> Relset.dilate ~mask:s (i + 1)) in
  let actual = List.rev (Relset.fold_proper_subsets (fun acc l -> l :: acc) [] s) in
  Alcotest.(check (list int)) "dilated counting order" expected actual

let test_iter_subsets_small () =
  let collect s = List.rev (Relset.fold_proper_subsets (fun acc l -> l :: acc) [] s) in
  Alcotest.(check (list int)) "subsets of doubleton" [ 0b001; 0b100 ] (collect 0b101);
  Alcotest.(check (list int)) "subsets of singleton" [] (collect 0b100);
  Alcotest.(check (list int)) "subsets of empty" [] (collect 0)

let test_iter_subset_pairs () =
  let pairs = ref [] in
  Relset.iter_subset_pairs (fun l r -> pairs := (l, r) :: !pairs) 0b110;
  Alcotest.(check (list (pair int int))) "pairs" [ (0b100, 0b010); (0b010, 0b100) ] !pairs;
  List.iter (fun (l, r) -> check "pair covers set" 0b110 (Relset.union l r)) !pairs

let test_next_same_cardinality () =
  check "gosper 0b0011" 0b0101 (Relset.next_same_cardinality 0b0011);
  check "gosper 0b0101" 0b0110 (Relset.next_same_cardinality 0b0101);
  check "gosper 0b0110" 0b1001 (Relset.next_same_cardinality 0b0110);
  Alcotest.check_raises "gosper 0" (Invalid_argument "Relset.next_same_cardinality: zero has no successor")
    (fun () -> ignore (Relset.next_same_cardinality 0))

let test_iter_subsets_of_size () =
  let collect n k =
    let acc = ref [] in
    Relset.iter_subsets_of_size ~n ~k (fun s -> acc := s :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int)) "4 choose 2" [ 3; 5; 6; 9; 10; 12 ] (collect 4 2);
  Alcotest.(check (list int)) "k=0" [ 0 ] (collect 4 0);
  Alcotest.(check (list int)) "k=n" [ 15 ] (collect 4 4);
  Alcotest.(check (list int)) "k>n" [] (collect 3 4);
  check "6 choose 3 count" 20 (List.length (collect 6 3))

let test_pp () =
  Alcotest.(check string) "numeric" "{0, 2}" (Relset.to_string 0b101);
  Alcotest.(check string)
    "named" "{A, C}"
    (Relset.to_string ~names:[| "A"; "B"; "C"; "D" |] 0b101);
  Alcotest.(check string) "empty" "{}" (Relset.to_string Relset.empty)

(* ---- Properties ---- *)

let small_set_gen =
  (* Sets over a 12-relation universe, non-empty. *)
  QCheck2.Gen.(map (fun bits -> 1 + bits) (int_bound 4094))

let prop_succ_enumerates_all =
  QCheck2.Test.make ~count:500 ~name:"succ trick enumerates all proper nonempty subsets once"
    small_set_gen (fun s ->
      let seen = Hashtbl.create 64 in
      Relset.iter_proper_subsets
        (fun l ->
          if Hashtbl.mem seen l then QCheck2.Test.fail_reportf "duplicate subset %d" l;
          if not (Relset.proper_subset l s) then
            QCheck2.Test.fail_reportf "%d not a proper subset of %d" l s;
          if Relset.is_empty l then QCheck2.Test.fail_report "empty subset produced";
          Hashtbl.add seen l ())
        s;
      Hashtbl.length seen = (1 lsl Relset.cardinal s) - 2)

let prop_dilate_contract_inverse =
  QCheck2.Test.make ~count:1000 ~name:"contract is a left inverse of dilate"
    QCheck2.Gen.(pair small_set_gen (int_bound 4095))
    (fun (mask, i) ->
      let i = i land ((1 lsl Relset.cardinal mask) - 1) in
      Relset.contract ~mask (Relset.dilate ~mask i) = i)

let prop_dilate_of_contract =
  QCheck2.Test.make ~count:1000 ~name:"dilate(contract w) = mask & w (Equation 5)"
    QCheck2.Gen.(pair small_set_gen (int_bound 4095))
    (fun (mask, w) -> Relset.dilate ~mask (Relset.contract ~mask w) = mask land w)

let prop_stride_enumerates_all =
  QCheck2.Test.make ~count:200 ~name:"odd-stride successor visits every pattern (footnote 3)"
    QCheck2.Gen.(pair small_set_gen (int_range 0 20))
    (fun (s, stride_seed) ->
      let stride = (2 * stride_seed) + 1 in
      let patterns = 1 lsl Relset.cardinal s in
      let seen = Hashtbl.create 64 in
      let start = Relset.lowest_bit s in
      let cur = ref start and steps = ref 0 in
      let continue = ref true in
      while !continue do
        Hashtbl.replace seen !cur ();
        cur := Relset.succ_subset_stride ~within:s ~stride !cur;
        incr steps;
        if !cur = start || !steps > patterns then continue := false
      done;
      !steps = patterns && Hashtbl.length seen = patterns)

let prop_subset_pairs_partition =
  QCheck2.Test.make ~count:300 ~name:"subset pairs are disjoint covers" small_set_gen (fun s ->
      let ok = ref true in
      Relset.iter_subset_pairs
        (fun l r ->
          if not (Relset.disjoint l r) then ok := false;
          if not (Relset.equal (Relset.union l r) s) then ok := false;
          if Relset.is_empty l || Relset.is_empty r then ok := false)
        s;
      !ok)

let prop_cardinal_matches_list =
  QCheck2.Test.make ~count:1000 ~name:"cardinal agrees with to_list length"
    QCheck2.Gen.(int_bound 0x3FFFFF)
    (fun s -> Relset.cardinal s = List.length (Relset.to_list s))

let prop_min_max_elt =
  QCheck2.Test.make ~count:1000 ~name:"min_elt/max_elt agree with to_list"
    QCheck2.Gen.(map (fun x -> 1 + x) (int_bound 0x3FFFFE))
    (fun s ->
      let l = Relset.to_list s in
      Relset.min_elt s = List.hd l && Relset.max_elt s = List.nth l (List.length l - 1))

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "construction errors" `Quick test_construction_errors;
    Alcotest.test_case "queries" `Quick test_queries;
    Alcotest.test_case "boolean algebra" `Quick test_algebra;
    Alcotest.test_case "member iteration" `Quick test_iteration;
    Alcotest.test_case "dilate/contract (paper example)" `Quick test_dilate_contract_paper_example;
    Alcotest.test_case "succ visits subsets in dilated order" `Quick test_succ_subset_order;
    Alcotest.test_case "proper subsets of tiny sets" `Quick test_iter_subsets_small;
    Alcotest.test_case "subset pairs of a doubleton" `Quick test_iter_subset_pairs;
    Alcotest.test_case "Gosper's hack" `Quick test_next_same_cardinality;
    Alcotest.test_case "subsets of a given size" `Quick test_iter_subsets_of_size;
    Alcotest.test_case "printing" `Quick test_pp;
    QCheck_alcotest.to_alcotest prop_succ_enumerates_all;
    QCheck_alcotest.to_alcotest prop_dilate_contract_inverse;
    QCheck_alcotest.to_alcotest prop_dilate_of_contract;
    QCheck_alcotest.to_alcotest prop_stride_enumerates_all;
    QCheck_alcotest.to_alcotest prop_subset_pairs_partition;
    QCheck_alcotest.to_alcotest prop_cardinal_matches_list;
    QCheck_alcotest.to_alcotest prop_min_max_elt;
  ]

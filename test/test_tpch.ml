(* TPC-H-shaped problems: schema consistency and optimizer behavior on a
   realistic snowflake schema. *)

module Tpch = Blitz_workload.Tpch
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Blitzsplit = Blitz_core.Blitzsplit
module Plan = Blitz_plan.Plan
module B = Blitz_baselines

let check_float = Test_helpers.check_float

let test_schema_scaling () =
  let sf1 = Tpch.schema ~scale_factor:1.0 in
  Alcotest.(check int) "eight tables" 8 (List.length sf1);
  check_float "lineitem at sf 1" 6_000_000.0 (List.assoc "lineitem" sf1);
  check_float "region fixed" 5.0 (List.assoc "region" sf1);
  let sf10 = Tpch.schema ~scale_factor:10.0 in
  check_float "lineitem scales" 60_000_000.0 (List.assoc "lineitem" sf10);
  check_float "nation does not scale" 25.0 (List.assoc "nation" sf10);
  Alcotest.check_raises "bad factor" (Invalid_argument "Tpch.schema: scale factor must be positive")
    (fun () -> ignore (Tpch.schema ~scale_factor:0.0))

let test_queries_well_formed () =
  List.iter
    (fun q ->
      let catalog, graph = Tpch.problem q in
      Alcotest.(check int)
        (Tpch.name q ^ " relation count")
        (List.length (Tpch.relations q))
        (Catalog.n catalog);
      Alcotest.(check bool) (Tpch.name q ^ " connected") true (Join_graph.is_connected graph);
      Alcotest.(check bool)
        (Tpch.name q ^ " has a description")
        true
        (String.length (Tpch.description q) > 10))
    Tpch.all

let test_q7_self_join () =
  let catalog, _ = Tpch.problem Tpch.Q7 in
  (* The nation table appears twice under distinct bindings. *)
  Alcotest.(check bool) "n1 bound" true (Catalog.index_of_name catalog "n1" <> None);
  Alcotest.(check bool) "n2 bound" true (Catalog.index_of_name catalog "n2" <> None);
  (* Both filtered to one nation: 25 * 0.04 = 1 row each. *)
  (match Catalog.index_of_name catalog "n1" with
  | Some i -> check_float "n1 filtered to one nation" 1.0 (Catalog.card catalog i)
  | None -> Alcotest.fail "n1 missing")

let test_filter_toggle () =
  let filtered, _ = Tpch.problem ~filtered:true Tpch.Q3 in
  let unfiltered, _ = Tpch.problem ~filtered:false Tpch.Q3 in
  (match (Catalog.index_of_name filtered "orders", Catalog.index_of_name unfiltered "orders") with
  | Some i, Some j ->
    Alcotest.(check bool) "filtering shrinks orders" true
      (Catalog.card filtered i < Catalog.card unfiltered j)
  | _ -> Alcotest.fail "orders missing");
  (* FK selectivity is filter-independent: the key domain is the
     unfiltered referenced table. *)
  let _, g1 = Tpch.problem ~filtered:true Tpch.Q3 in
  let _, g2 = Tpch.problem ~filtered:false Tpch.Q3 in
  check_float "same FK selectivity" (Join_graph.selectivity g1 0 1) (Join_graph.selectivity g2 0 1)

let test_all_queries_optimize () =
  List.iter
    (fun q ->
      let catalog, graph = Tpch.problem q in
      let r = Blitzsplit.optimize_join Cost_model.kdnl catalog graph in
      Alcotest.(check bool) (Tpch.name q ^ " feasible") true (Blitzsplit.feasible r);
      let plan = Blitzsplit.best_plan_exn r in
      Alcotest.(check bool)
        (Tpch.name q ^ " valid plan")
        true
        (Result.is_ok (Plan.validate ~n:(Catalog.n catalog) plan));
      (* Restricted searches never beat the bushy optimum. *)
      let np = (B.Dpsize.optimize ~cartesian:false Cost_model.kdnl catalog graph).B.Dpsize.cost in
      let ld = (B.Leftdeep.optimize Cost_model.kdnl catalog graph).B.Leftdeep.cost in
      Alcotest.(check bool) (Tpch.name q ^ " containment") true
        (np >= Blitzsplit.best_cost r *. (1.0 -. 1e-9)
        && ld >= Blitzsplit.best_cost r *. (1.0 -. 1e-9)))
    Tpch.all

let test_q7_leftdeep_penalty () =
  (* The demo's headline: on Q7 the left-deep restriction costs several
     times the bushy optimum. *)
  let catalog, graph = Tpch.problem Tpch.Q7 in
  let bushy = Blitzsplit.best_cost (Blitzsplit.optimize_join Cost_model.kdnl catalog graph) in
  let ld = (B.Leftdeep.optimize Cost_model.kdnl catalog graph).B.Leftdeep.cost in
  Alcotest.(check bool)
    (Printf.sprintf "left-deep at least 2x worse (%.3g vs %.3g)" ld bushy)
    true
    (ld > 2.0 *. bushy)

let test_scale_factor_monotone () =
  let cost sf =
    let catalog, graph = Tpch.problem ~scale_factor:sf Tpch.Q3 in
    Blitzsplit.best_cost (Blitzsplit.optimize_join Cost_model.naive catalog graph)
  in
  Alcotest.(check bool) "cost grows with scale" true (cost 10.0 > cost 1.0)

let suite =
  [
    Alcotest.test_case "schema scaling" `Quick test_schema_scaling;
    Alcotest.test_case "queries well-formed" `Quick test_queries_well_formed;
    Alcotest.test_case "Q7 nation self-join" `Quick test_q7_self_join;
    Alcotest.test_case "filter toggle" `Quick test_filter_toggle;
    Alcotest.test_case "all queries optimize" `Quick test_all_queries_optimize;
    Alcotest.test_case "Q7 left-deep penalty" `Quick test_q7_leftdeep_penalty;
    Alcotest.test_case "scale-factor monotonicity" `Quick test_scale_factor_monotone;
  ]

(* Statistics substrate: histograms, selectivity estimators, collection. *)

open Test_helpers
module Histogram = Blitz_stats.Histogram
module Selectivity = Blitz_stats.Selectivity
module Collector = Blitz_stats.Collector
module Datagen = Blitz_exec.Datagen
module Blitzsplit = Blitz_core.Blitzsplit

let check_float = Test_helpers.check_float

let test_histogram_basics () =
  let h = Histogram.build ~buckets:4 [| 0; 1; 2; 3; 4; 5; 6; 7 |] in
  Alcotest.(check int) "total" 8 (Histogram.total_count h);
  Alcotest.(check int) "distinct" 8 (Histogram.distinct_count h);
  Alcotest.(check int) "min" 0 (Histogram.min_value h);
  Alcotest.(check int) "max" 7 (Histogram.max_value h);
  let cells = Histogram.buckets h in
  Alcotest.(check int) "4 buckets" 4 (List.length cells);
  List.iter
    (fun (b : Histogram.bucket) ->
      Alcotest.(check int) "2 per bucket" 2 b.Histogram.count;
      Alcotest.(check int) "2 distinct per bucket" 2 b.Histogram.distinct)
    cells

let test_histogram_duplicates_and_collapse () =
  let h = Histogram.build ~buckets:8 [| 5; 5; 5; 5 |] in
  Alcotest.(check int) "single bucket" 1 (List.length (Histogram.buckets h));
  Alcotest.(check int) "total" 4 (Histogram.total_count h);
  Alcotest.(check int) "distinct" 1 (Histogram.distinct_count h);
  Alcotest.check_raises "empty rejected" (Invalid_argument "Histogram.build: empty data")
    (fun () -> ignore (Histogram.build [||]))

let test_histogram_bucket_cover () =
  let rng = Rng.create ~seed:77 in
  let data = Array.init 1000 (fun _ -> Rng.int rng 337) in
  let h = Histogram.build ~buckets:7 data in
  let cells = Histogram.buckets h in
  let sum = List.fold_left (fun acc (b : Histogram.bucket) -> acc + b.Histogram.count) 0 cells in
  Alcotest.(check int) "counts cover all values" 1000 sum;
  let rec contiguous = function
    | (a : Histogram.bucket) :: (b : Histogram.bucket) :: rest ->
      Alcotest.(check int) "contiguous" (a.Histogram.hi + 1) b.Histogram.lo;
      contiguous (b :: rest)
    | [ last ] -> Alcotest.(check int) "ends at max" (Histogram.max_value h) last.Histogram.hi
    | [] -> ()
  in
  contiguous cells

let test_distinct_estimator_uniform () =
  let rng = Rng.create ~seed:5 in
  let a = Array.init 5000 (fun _ -> Rng.int rng 100) in
  let b = Array.init 5000 (fun _ -> Rng.int rng 100) in
  let sel = Selectivity.from_distinct (Histogram.build a) (Histogram.build b) in
  (* All 100 values almost surely appear in 5000 draws: sel = 1/100. *)
  check_float ~rel:1e-9 "containment rule" 0.01 sel

let test_histogram_estimator_uniform () =
  let rng = Rng.create ~seed:6 in
  let a = Array.init 5000 (fun _ -> Rng.int rng 50) in
  let b = Array.init 5000 (fun _ -> Rng.int rng 50) in
  let sel = Selectivity.from_histograms (Histogram.build a) (Histogram.build b) in
  Alcotest.(check bool)
    (Printf.sprintf "within 20%% of 1/50 (got %g)" sel)
    true
    (Float.abs (sel -. 0.02) < 0.004)

let test_histogram_estimator_disjoint_ranges () =
  let a = Histogram.build (Array.init 100 (fun i -> i)) in
  let b = Histogram.build (Array.init 100 (fun i -> i + 1000)) in
  check_float "disjoint ranges: zero" 0.0 (Selectivity.from_histograms a b)

let test_histogram_estimator_skew () =
  (* Column b concentrated on one value that column a contains: the
     histogram estimator must see far more matches than the containment
     rule predicts from distinct counts alone. *)
  let rng = Rng.create ~seed:9 in
  let a = Array.init 2000 (fun _ -> Rng.int rng 100) in
  let b = Array.init 2000 (fun i -> if i < 1900 then 7 else Rng.int rng 100) in
  let ha = Histogram.build ~buckets:100 a and hb = Histogram.build ~buckets:100 b in
  let est = Selectivity.from_histograms ha hb in
  (* True selectivity: ~ (1900 matches vs 20 copies of 7 in a) ->
     roughly 0.0095 (vs 0.01 for uniform-uniform over 100). *)
  let exact =
    let count_eq arr v = Array.fold_left (fun acc x -> if x = v then acc + 1 else acc) 0 arr in
    let matches = ref 0 in
    Array.iter (fun v -> matches := !matches + count_eq a v) b;
    float_of_int !matches /. (2000.0 *. 2000.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "histogram estimate %g within 2x of exact %g" est exact)
    true
    (est > exact /. 2.0 && est < exact *. 2.0);
  let naive = Selectivity.from_distinct ha hb in
  Alcotest.(check bool)
    (Printf.sprintf "skew-blind containment rule %g is farther off" naive)
    true
    (Float.abs (log (est /. exact)) <= Float.abs (log (naive /. exact)))

let collected_fixture ?(seed = 21) () =
  let catalog = Catalog.of_list [ ("r", 3000.0); ("s", 2000.0); ("t", 1000.0) ] in
  let graph = Join_graph.of_edges ~n:3 [ (0, 1, 0.01); (1, 2, 0.002) ] in
  let rng = Rng.create ~seed in
  let data = Datagen.generate ~rng catalog graph in
  (data, catalog, graph)

let test_collector_cardinalities_exact () =
  let data, _, _ = collected_fixture () in
  let stats = Collector.collect data in
  Alcotest.(check int) "n" 3 (Catalog.n stats.Collector.catalog);
  check_float "exact counts" 3000.0 (Catalog.card stats.Collector.catalog 0);
  Alcotest.(check int) "edges preserved" 2 (Join_graph.edge_count stats.Collector.graph)

let test_collector_selectivities_close () =
  let data, _, _ = collected_fixture () in
  List.iter
    (fun method_ ->
      let stats = Collector.collect ~method_ data in
      let err = Collector.max_relative_selectivity_error stats data in
      Alcotest.(check bool)
        (Printf.sprintf "max relative error %.3f below 25%%" err)
        true (err < 0.25))
    [ Collector.Distinct_count; Collector.Histogram_overlap ]

let test_collected_stats_drive_good_plans () =
  let data, _, _ = collected_fixture () in
  let stats = Collector.collect data in
  (* Optimize against collected statistics, then cost the plan under the
     realized truth. *)
  let r = Blitzsplit.optimize_join Cost_model.kdnl stats.Collector.catalog stats.Collector.graph in
  let plan = Blitzsplit.best_plan_exn r in
  let truth_catalog = Datagen.realized_catalog data in
  let truth_graph = Datagen.realized_graph data in
  let optimal =
    Blitzsplit.best_cost (Blitzsplit.optimize_join Cost_model.kdnl truth_catalog truth_graph)
  in
  let achieved = Plan.cost Cost_model.kdnl truth_catalog truth_graph plan in
  Alcotest.(check bool)
    (Printf.sprintf "plan from estimates within 10%% of optimal (%.4g vs %.4g)" achieved optimal)
    true
    (achieved <= optimal *. 1.10)

let prop_uniform_estimation_accuracy =
  QCheck2.Test.make ~count:30 ~name:"collected selectivities track realized ones on uniform data"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 2 + Rng.int rng 3 in
      let cards = Array.init n (fun _ -> float_of_int (800 + Rng.int rng 2000)) in
      let catalog = Catalog.of_cards cards in
      let edges = List.init (n - 1) (fun i -> (i, i + 1, Rng.log_uniform rng ~lo:0.002 ~hi:0.2)) in
      let graph = Join_graph.of_edges ~n edges in
      let data = Datagen.generate ~rng catalog graph in
      let stats = Collector.collect data in
      Collector.max_relative_selectivity_error stats data < 0.35)

let suite =
  [
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "histogram duplicates / collapse" `Quick
      test_histogram_duplicates_and_collapse;
    Alcotest.test_case "histogram buckets cover" `Quick test_histogram_bucket_cover;
    Alcotest.test_case "containment-rule estimator" `Quick test_distinct_estimator_uniform;
    Alcotest.test_case "histogram estimator on uniform data" `Quick
      test_histogram_estimator_uniform;
    Alcotest.test_case "disjoint ranges" `Quick test_histogram_estimator_disjoint_ranges;
    Alcotest.test_case "histogram estimator under skew" `Quick test_histogram_estimator_skew;
    Alcotest.test_case "collector: exact cardinalities" `Quick test_collector_cardinalities_exact;
    Alcotest.test_case "collector: selectivities close" `Quick test_collector_selectivities_close;
    Alcotest.test_case "collected stats drive near-optimal plans" `Quick
      test_collected_stats_drive_good_plans;
    QCheck_alcotest.to_alcotest prop_uniform_estimation_accuracy;
  ]

(* Core optimizer tests: the paper's Table 1 exactly, oracle comparisons
   against brute force, the fan recurrence, counters, determinism. *)

open Test_helpers
module Blitzsplit = Blitz_core.Blitzsplit
module Dp_table = Blitz_core.Dp_table
module Counters = Blitz_core.Counters
module Card_table = Blitz_core.Card_table
module Bruteforce = Blitz_baselines.Bruteforce

let s_of = Relset.of_list

(* ---- Table 1: the paper's worked Cartesian-product example ---- *)

let table1_result () = Blitzsplit.optimize_product Cost_model.naive abcd_catalog

let test_table1_cards () =
  let r = table1_result () in
  let card s = Dp_table.card r.Blitzsplit.table (s_of s) in
  check_float "card {A}" 10.0 (card [ 0 ]);
  check_float "card {B}" 20.0 (card [ 1 ]);
  check_float "card {C}" 30.0 (card [ 2 ]);
  check_float "card {D}" 40.0 (card [ 3 ]);
  check_float "card {A,B}" 200.0 (card [ 0; 1 ]);
  check_float "card {A,C}" 300.0 (card [ 0; 2 ]);
  check_float "card {A,D}" 400.0 (card [ 0; 3 ]);
  check_float "card {B,C}" 600.0 (card [ 1; 2 ]);
  check_float "card {B,D}" 800.0 (card [ 1; 3 ]);
  check_float "card {C,D}" 1200.0 (card [ 2; 3 ]);
  check_float "card {A,B,C}" 6000.0 (card [ 0; 1; 2 ]);
  check_float "card {A,B,D}" 8000.0 (card [ 0; 1; 3 ]);
  check_float "card {A,C,D}" 12000.0 (card [ 0; 2; 3 ]);
  check_float "card {B,C,D}" 24000.0 (card [ 1; 2; 3 ]);
  check_float "card {A,B,C,D}" 240000.0 (card [ 0; 1; 2; 3 ])

let test_table1_costs () =
  let r = table1_result () in
  let cost s = Dp_table.cost r.Blitzsplit.table (s_of s) in
  check_float "cost {A}" 0.0 (cost [ 0 ]);
  check_float "cost {D}" 0.0 (cost [ 3 ]);
  check_float "cost {A,B}" 200.0 (cost [ 0; 1 ]);
  check_float "cost {A,C}" 300.0 (cost [ 0; 2 ]);
  check_float "cost {A,D}" 400.0 (cost [ 0; 3 ]);
  check_float "cost {B,C}" 600.0 (cost [ 1; 2 ]);
  check_float "cost {B,D}" 800.0 (cost [ 1; 3 ]);
  check_float "cost {C,D}" 1200.0 (cost [ 2; 3 ]);
  check_float "cost {A,B,C}" 6200.0 (cost [ 0; 1; 2 ]);
  check_float "cost {A,B,D}" 8200.0 (cost [ 0; 1; 3 ]);
  check_float "cost {A,C,D}" 12300.0 (cost [ 0; 2; 3 ]);
  check_float "cost {B,C,D}" 24600.0 (cost [ 1; 2; 3 ]);
  check_float "cost {A,B,C,D}" 241000.0 (cost [ 0; 1; 2; 3 ])

let test_table1_best_split () =
  let r = table1_result () in
  let best = Dp_table.best_lhs r.Blitzsplit.table (s_of [ 0; 1; 2; 3 ]) in
  (* The optimal split is {A,D} x {B,C}; either orientation is valid. *)
  let ok = Relset.equal best (s_of [ 0; 3 ]) || Relset.equal best (s_of [ 1; 2 ]) in
  Alcotest.(check bool) "best split is {A,D} | {B,C}" true ok;
  (* And the extracted plan, normalized, is (A x D) x (B x C). *)
  let plan = Plan.normalize (Blitzsplit.best_plan_exn r) in
  let expected = Plan.(Join (Join (Leaf 0, Leaf 3), Join (Leaf 1, Leaf 2))) in
  Alcotest.(check bool) "plan is (A x D) x (B x C)" true (Plan.equal plan expected);
  Alcotest.(check string)
    "compact rendering" "((A x D) x (B x C))"
    (Plan.to_compact_string ~names:(Catalog.names abcd_catalog) plan)

let test_table1_dump () =
  let r = table1_result () in
  let dump = Dp_table.dump ~names:(Catalog.names abcd_catalog) r.Blitzsplit.table in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and dl = String.length dump in
        let rec scan i = i + nl <= dl && (String.sub dump i nl = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) (Printf.sprintf "dump contains %S" needle) true found)
    [ "Relation Set"; "{A, B, C, D}"; "240000"; "241000"; "none" ]

(* ---- Fundamental invariants ---- *)

let test_single_relation () =
  let catalog = Catalog.of_list [ ("only", 42.0) ] in
  let r = Blitzsplit.optimize_product Cost_model.naive catalog in
  check_float "cost" 0.0 (Blitzsplit.best_cost r);
  Alcotest.(check bool) "plan" true (Plan.equal (Blitzsplit.best_plan_exn r) (Plan.Leaf 0))

let test_two_relations_join () =
  let catalog = Catalog.of_list [ ("A", 100.0); ("B", 50.0) ] in
  let graph = Join_graph.of_edges ~n:2 [ (0, 1, 0.01) ] in
  let r = Blitzsplit.optimize_join Cost_model.naive catalog graph in
  check_float "cost = |A||B|s" 50.0 (Blitzsplit.best_cost r)

let test_counters_match_analysis () =
  (* Without thresholds the split loop runs exactly 3^n - 2^(n+1) + 1
     times in aggregate (Section 3.3). *)
  List.iter
    (fun n ->
      let catalog = Catalog.uniform ~n ~card:100.0 in
      let r = Blitzsplit.optimize_product Cost_model.naive catalog in
      Alcotest.(check int)
        (Printf.sprintf "loop iters at n=%d" n)
        (Counters.exact_loop_iters n)
        r.Blitzsplit.counters.Counters.loop_iters;
      Alcotest.(check int)
        (Printf.sprintf "subsets at n=%d" n)
        ((1 lsl n) - n - 1)
        r.Blitzsplit.counters.Counters.subsets)
    [ 2; 3; 5; 8; 11 ]

let test_determinism () =
  let rng = Rng.create ~seed:7 in
  let catalog = random_catalog rng ~n:8 ~lo:1.0 ~hi:1e5 in
  let graph = random_graph rng ~n:8 ~edge_prob:0.4 ~sel_lo:1e-3 ~sel_hi:1.0 in
  let r1 = Blitzsplit.optimize_join Cost_model.kdnl catalog graph in
  let r2 = Blitzsplit.optimize_join Cost_model.kdnl catalog graph in
  check_float "same cost" (Blitzsplit.best_cost r1) (Blitzsplit.best_cost r2);
  Alcotest.(check bool)
    "same plan" true
    (Plan.equal (Blitzsplit.best_plan_exn r1) (Blitzsplit.best_plan_exn r2))

let test_size_mismatch_rejected () =
  let catalog = Catalog.uniform ~n:3 ~card:10.0 in
  let graph = Join_graph.no_predicates ~n:4 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Blitzsplit: graph over 4 relations, catalog has 3") (fun () ->
      ignore (Blitzsplit.optimize_join Cost_model.naive catalog graph))

(* A star query with tiny dimension tables: the optimal plan contains a
   Cartesian product (the paper's motivating scenario, Sections 1/7). *)
let test_cartesian_product_chosen_when_optimal () =
  (* Under the naive model, crossing the tiny dimensions first costs
     3*4 = 12 and the final join 12, total 24; any plan joining the fact
     table early pays at least |fact| * 1e-3 = 1000. *)
  let catalog = Catalog.of_list [ ("dim1", 3.0); ("dim2", 4.0); ("fact", 1_000_000.0) ] in
  let graph = Join_graph.of_edges ~n:3 [ (0, 2, 1e-3); (1, 2, 1e-3) ] in
  let r = Blitzsplit.optimize_join Cost_model.naive catalog graph in
  let plan = Blitzsplit.best_plan_exn r in
  Alcotest.(check int) "one cartesian product" 1 (Plan.cartesian_join_count graph plan);
  (* The product of the two dimensions must be joined with the fact table
     last: ((dim1 x dim2) x fact) up to commutativity. *)
  let expected = Plan.(Join (Join (Leaf 0, Leaf 1), Leaf 2)) in
  Alcotest.(check bool) "plan shape" true (Plan.equal (Plan.normalize plan) expected)

(* ---- Properties ---- *)

let prop_matches_bruteforce =
  QCheck2.Test.make ~count:150 ~name:"blitzsplit finds the brute-force optimum (n<=7)"
    ~print:problem_print (problem_gen ~max_n:7)
    (fun p ->
      let r = Blitzsplit.optimize_join p.model p.catalog p.graph in
      let _, oracle_cost = Bruteforce.optimize p.model p.catalog p.graph in
      let cost = Blitzsplit.best_cost r in
      if not (Blitz_util.Float_more.approx_equal ~rel:1e-6 cost oracle_cost) then
        QCheck2.Test.fail_reportf "blitzsplit %.9g vs bruteforce %.9g" cost oracle_cost;
      true)

let prop_fan_recurrence_cardinalities =
  QCheck2.Test.make ~count:150
    ~name:"table cardinalities equal induced-subgraph products (Eq. 7/11)" ~print:problem_print
    (problem_gen ~max_n:8)
    (fun p ->
      let r = Blitzsplit.optimize_join p.model p.catalog p.graph in
      let n = Catalog.n p.catalog in
      let ok = ref true in
      for s = 1 to (1 lsl n) - 1 do
        let expected = Join_graph.join_cardinality p.catalog p.graph s in
        let got = Dp_table.card r.Blitzsplit.table s in
        if not (Blitz_util.Float_more.approx_equal ~rel:1e-9 expected got) then ok := false
      done;
      !ok)

let prop_extracted_plan_cost_matches_table =
  QCheck2.Test.make ~count:150 ~name:"reference costing of the extracted plan = table cost"
    ~print:problem_print (problem_gen ~max_n:8)
    (fun p ->
      let r = Blitzsplit.optimize_join p.model p.catalog p.graph in
      let plan = Blitzsplit.best_plan_exn r in
      Blitz_util.Float_more.approx_equal ~rel:1e-6
        (Plan.cost p.model p.catalog p.graph plan)
        (Blitzsplit.best_cost r))

let prop_product_is_join_with_empty_graph =
  QCheck2.Test.make ~count:100 ~name:"product optimizer = join optimizer on the empty graph"
    ~print:problem_print (problem_gen ~max_n:8)
    (fun p ->
      let n = Catalog.n p.catalog in
      let product = Blitzsplit.optimize_product p.model p.catalog in
      let join = Blitzsplit.optimize_join p.model p.catalog (Join_graph.no_predicates ~n) in
      Blitz_util.Float_more.approx_equal ~rel:1e-9 (Blitzsplit.best_cost product)
        (Blitzsplit.best_cost join))

let prop_optimum_beats_random_plans =
  QCheck2.Test.make ~count:100 ~name:"no random plan beats the reported optimum"
    ~print:problem_print (problem_gen ~max_n:8)
    (fun p ->
      let r = Blitzsplit.optimize_join p.model p.catalog p.graph in
      let best = Blitzsplit.best_cost r in
      let rng = Rng.create ~seed:(p.seed + 17) in
      let full = Relset.full (Catalog.n p.catalog) in
      let ok = ref true in
      for _ = 1 to 25 do
        let plan = Blitz_baselines.Transform.random_bushy rng full in
        if Plan.cost p.model p.catalog p.graph plan < best *. (1.0 -. 1e-9) then ok := false
      done;
      !ok)

let prop_every_subset_feasible_without_threshold =
  QCheck2.Test.make ~count:80 ~name:"every subset has a plan when no threshold is set"
    ~print:problem_print (problem_gen ~max_n:8)
    (fun p ->
      let r = Blitzsplit.optimize_join p.model p.catalog p.graph in
      let n = Catalog.n p.catalog in
      let ok = ref true in
      for s = 1 to (1 lsl n) - 1 do
        if not (Dp_table.is_feasible r.Blitzsplit.table s) then ok := false;
        match Dp_table.extract_plan r.Blitzsplit.table s with
        | None -> ok := false
        | Some plan -> if not (Relset.equal (Plan.relations plan) s) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "Table 1: cardinalities" `Quick test_table1_cards;
    Alcotest.test_case "Table 1: costs" `Quick test_table1_costs;
    Alcotest.test_case "Table 1: best split and plan" `Quick test_table1_best_split;
    Alcotest.test_case "Table 1: dump rendering" `Quick test_table1_dump;
    Alcotest.test_case "single relation" `Quick test_single_relation;
    Alcotest.test_case "two-relation join" `Quick test_two_relations_join;
    Alcotest.test_case "loop counters match Section 3.3" `Quick test_counters_match_analysis;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "graph/catalog size mismatch" `Quick test_size_mismatch_rejected;
    Alcotest.test_case "optimal Cartesian product retained" `Quick
      test_cartesian_product_chosen_when_optimal;
    QCheck_alcotest.to_alcotest prop_matches_bruteforce;
    QCheck_alcotest.to_alcotest prop_fan_recurrence_cardinalities;
    QCheck_alcotest.to_alcotest prop_extracted_plan_cost_matches_table;
    QCheck_alcotest.to_alcotest prop_product_is_join_with_empty_graph;
    QCheck_alcotest.to_alcotest prop_optimum_beats_random_plans;
    QCheck_alcotest.to_alcotest prop_every_subset_feasible_without_threshold;
  ]

(* Interesting sort orders (Section 6.5 extension): the (subset, order)
   DP against an independent plan-enumeration oracle. *)

open Test_helpers
module O = Blitz_core.Blitzsplit_orders
module Blitzsplit = Blitz_core.Blitzsplit

let check_float = Test_helpers.check_float

let sort_cost c = if c <= 1.0 then 0.0 else c *. log c

(* Independent oracle: enumerate every logical plan; per plan compute,
   bottom-up, the cheapest physical cost for each delivered order
   (None or an edge id), closing each node with sort enforcers.  The
   overall optimum is the min over plans and orders. *)
let oracle ?required_order catalog graph =
  let dnl = Cost_model.kdnl in
  let edges = Array.of_list (Join_graph.edges graph) in
  let n_edges = Array.length edges in
  let n = Catalog.n catalog in
  (* An order is realizable for a set only when its edge has an endpoint
     there (one cannot sort on an absent attribute). *)
  let realizable e set =
    let i, j, _ = edges.(e) in
    Relset.mem set i || Relset.mem set j
  in
  let close set card (by_order : float array) =
    (* slot 0 = unordered/any; slot e+1 = sorted on edge e *)
    let best_any = Array.fold_left Float.min Float.infinity by_order in
    by_order.(0) <- best_any;
    for e = 0 to n_edges - 1 do
      if realizable e set then
        by_order.(e + 1) <- Float.min by_order.(e + 1) (best_any +. sort_cost card)
    done;
    by_order
  in
  let rec go plan =
    match plan with
    | Plan.Leaf r ->
      let by_order = Array.make (n_edges + 1) Float.infinity in
      by_order.(0) <- 0.0;
      let card = Catalog.card catalog r in
      (close (Relset.singleton r) card by_order, Relset.singleton r, card)
    | Plan.Join (l, r) ->
      let lo, ls, lcard = go l in
      let ro, rs, rcard = go r in
      let out = lcard *. rcard *. Join_graph.pi_span graph ls rs in
      let by_order = Array.make (n_edges + 1) Float.infinity in
      (* Nested loop, either orientation; preserves the outer's order. *)
      let nl = Cost_model.kappa dnl ~out ~lcard ~rcard in
      for o = 0 to n_edges do
        by_order.(o) <- Float.min by_order.(o) (lo.(o) +. ro.(0) +. nl);
        by_order.(o) <- Float.min by_order.(o) (ro.(o) +. lo.(0) +. nl)
      done;
      (* Merge join on each spanning edge. *)
      for e = 0 to n_edges - 1 do
        let i, j, _ = edges.(e) in
        let spans = (Relset.mem ls i && Relset.mem rs j) || (Relset.mem ls j && Relset.mem rs i) in
        if spans then
          by_order.(e + 1) <-
            Float.min by_order.(e + 1) (lo.(e + 1) +. ro.(e + 1) +. lcard +. rcard)
      done;
      (close (Relset.union ls rs) out by_order, Relset.union ls rs, out)
    | Plan.Multiway _ ->
      (* The interesting-order oracle only models binary plans. *)
      invalid_arg "test_orders: multiway plans unsupported"
  in
  let slot = match required_order with Some e -> e + 1 | None -> 0 in
  List.fold_left
    (fun acc plan ->
      let by_order, _, _ = go plan in
      Float.min acc by_order.(slot))
    Float.infinity
    (Plan.enumerate (Relset.full n))

let chain3 () =
  let catalog = Catalog.of_cards [| 100.0; 200.0; 50.0 |] in
  let graph = Join_graph.of_edges ~n:3 [ (0, 1, 0.01); (1, 2, 0.02) ] in
  (catalog, graph)

let test_logical_and_order_of () =
  let p = O.Merge_join (O.Sort (O.Scan 0, 1), O.Sort (O.Nested_loop (O.Scan 1, O.Scan 2), 1), 1) in
  Alcotest.(check bool) "logical strips physics" true
    (Plan.equal (O.logical p) Plan.(Join (Leaf 0, Join (Leaf 1, Leaf 2))));
  Alcotest.(check (option int)) "order delivered" (Some 1) (O.order_of p);
  Alcotest.(check (option int)) "scan unordered" None (O.order_of (O.Scan 0));
  Alcotest.(check (option int)) "NL preserves outer order" (Some 0)
    (O.order_of (O.Nested_loop (O.Sort (O.Scan 1, 0), O.Scan 2)))

let test_phys_cost_rejects_bad_merge () =
  let catalog, graph = chain3 () in
  Alcotest.check_raises "unsorted merge input"
    (Invalid_argument "phys_cost: merge-join inputs must deliver the join order") (fun () ->
      ignore (O.phys_cost catalog graph (O.Merge_join (O.Scan 0, O.Scan 1, 0))));
  Alcotest.check_raises "sort on an absent attribute"
    (Invalid_argument "phys_cost: sort attribute absent from the input") (fun () ->
      ignore (O.phys_cost catalog graph (O.Sort (O.Scan 0, 1))))

let test_result_cost_is_recostable () =
  let catalog, graph = chain3 () in
  let r = O.optimize catalog graph in
  check_float ~rel:1e-9 "phys_cost agrees" (O.phys_cost catalog graph r.O.plan) r.O.cost

let test_never_worse_than_sm_dnl_reference () =
  let catalog, graph = chain3 () in
  let r = O.optimize catalog graph in
  let reference = O.sm_dnl_reference_cost catalog graph in
  Alcotest.(check bool)
    (Printf.sprintf "orders %.4g <= reference %.4g" r.O.cost reference)
    true
    (r.O.cost <= reference *. (1.0 +. 1e-9))

let test_order_reuse_beats_reference () =
  (* Threading pays: sort the small R1 (383 rows), cross it with R0 as
     the nested-loop outer — the 7.4M-row product comes out already
     sorted on R1's join attribute — then merge-join the sorted R2.  The
     order-blind reference must instead sort the 7.4M-row intermediate
     from scratch (or pay kappa_dnl's quadratic term), costing ~14x
     more. *)
  let catalog = Catalog.of_cards [| 19278.0; 383.0; 16615.0 |] in
  let graph = Join_graph.of_edges ~n:3 [ (1, 2, 0.0183) ] in
  let r = O.optimize catalog graph in
  let reference = O.sm_dnl_reference_cost catalog graph in
  Alcotest.(check bool)
    (Printf.sprintf "strict win: %.6g < %.6g" r.O.cost reference)
    true
    (r.O.cost < reference /. 2.0);
  (* And the winning plan indeed threads an order through a nested loop
     into a merge join. *)
  let rec has_mj = function
    | O.Scan _ -> false
    | O.Sort (p, _) -> has_mj p
    | O.Nested_loop (l, r) -> has_mj l || has_mj r
    | O.Merge_join (O.Nested_loop _, _, _) | O.Merge_join (_, O.Nested_loop _, _) -> true
    | O.Merge_join (l, r, _) -> has_mj l || has_mj r
  in
  Alcotest.(check bool) "merge-join consumes a nested-loop-preserved order" true
    (has_mj r.O.plan)

let test_required_order () =
  let catalog, graph = chain3 () in
  let unconstrained = O.optimize catalog graph in
  let constrained = O.optimize ~required_order:1 catalog graph in
  Alcotest.(check (option int)) "delivers the required order" (Some 1)
    (O.order_of constrained.O.plan);
  Alcotest.(check bool) "never cheaper than unconstrained" true
    (constrained.O.cost >= unconstrained.O.cost -. 1e-9);
  check_float ~rel:1e-9 "recostable" (O.phys_cost catalog graph constrained.O.plan)
    constrained.O.cost;
  Alcotest.check_raises "bad edge id"
    (Invalid_argument "Blitzsplit_orders: required_order out of range") (fun () ->
      ignore (O.optimize ~required_order:9 catalog graph))

let prop_matches_oracle =
  QCheck2.Test.make ~count:80 ~name:"orders DP = plan-enumeration oracle (n<=5)"
    ~print:problem_print (problem_gen ~max_n:5)
    (fun p ->
      let r = O.optimize p.catalog p.graph in
      let oracle_cost = oracle p.catalog p.graph in
      if not (Blitz_util.Float_more.approx_equal ~rel:1e-6 r.O.cost oracle_cost) then
        QCheck2.Test.fail_reportf "DP %.9g vs oracle %.9g" r.O.cost oracle_cost;
      true)

let prop_matches_oracle_with_required_order =
  QCheck2.Test.make ~count:60 ~name:"orders DP honors required_order optimally (n<=5)"
    ~print:problem_print (problem_gen ~max_n:5)
    (fun p ->
      match Join_graph.edges p.graph with
      | [] -> true
      | edges ->
        let rng = Rng.create ~seed:(p.seed + 5) in
        let e = Rng.int rng (List.length edges) in
        let r = O.optimize ~required_order:e p.catalog p.graph in
        let oracle_cost = oracle ~required_order:e p.catalog p.graph in
        Blitz_util.Float_more.approx_equal ~rel:1e-6 r.O.cost oracle_cost
        && O.order_of r.O.plan = Some e)

let prop_result_always_recostable =
  QCheck2.Test.make ~count:80 ~name:"returned physical plans re-cost to the reported optimum"
    ~print:problem_print (problem_gen ~max_n:7)
    (fun p ->
      let r = O.optimize p.catalog p.graph in
      let n = Catalog.n p.catalog in
      Relset.equal (Plan.relations (O.logical r.O.plan)) (Relset.full n)
      && Blitz_util.Float_more.approx_equal ~rel:1e-6
           (O.phys_cost p.catalog p.graph r.O.plan)
           r.O.cost)

let prop_never_worse_than_reference =
  QCheck2.Test.make ~count:80 ~name:"order reuse never loses to min(ksm, kdnl) blitzsplit"
    ~print:problem_print (problem_gen ~max_n:7)
    (fun p ->
      let r = O.optimize p.catalog p.graph in
      r.O.cost <= O.sm_dnl_reference_cost p.catalog p.graph *. (1.0 +. 1e-9))

let suite =
  [
    Alcotest.test_case "logical projection and delivered order" `Quick test_logical_and_order_of;
    Alcotest.test_case "phys_cost validation" `Quick test_phys_cost_rejects_bad_merge;
    Alcotest.test_case "result recosts to reported cost" `Quick test_result_cost_is_recostable;
    Alcotest.test_case "never worse than min(ksm,kdnl)" `Quick
      test_never_worse_than_sm_dnl_reference;
    Alcotest.test_case "order reuse wins strictly" `Quick test_order_reuse_beats_reference;
    Alcotest.test_case "required final order" `Quick test_required_order;
    QCheck_alcotest.to_alcotest prop_matches_oracle;
    QCheck_alcotest.to_alcotest prop_matches_oracle_with_required_order;
    QCheck_alcotest.to_alcotest prop_result_always_recostable;
    QCheck_alcotest.to_alcotest prop_never_worse_than_reference;
  ]

(* blitz — command-line front end for the blitzsplit join-order optimizer.

   Subcommands:
     optimize   optimize a query (from a SQL script or workload flags)
     compare    run every optimizer in the repository on one query
     workload   emit an appendix-style benchmark workload as a SQL script
     regret     measure plan-cost regret under cardinality-estimate error
     counters   show instrumentation counters for one optimization

   Examples:
     blitz optimize --sql query.sql --model kdnl --annotate
     blitz optimize -n 12 --topology star --mean-card 1000 --dump-table
     blitz optimize --sql query.sql --execute --seed 42
     blitz compare -n 10 --topology clique --model kdnl
     blitz workload -n 15 --topology cycle+3 --mean-card 100 --variability 0.33 *)

open Cmdliner
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Counters = Blitz_core.Counters
module Dp_table = Blitz_core.Dp_table
module Workload = Blitz_workload.Workload
module Binder = Blitz_sql.Binder
module B = Blitz_baselines
module Rng = Blitz_util.Rng
module Guard = Blitz_guard.Guard
module Budget = Blitz_guard.Budget
module Degrade = Blitz_guard.Degrade
module Sanitize = Blitz_guard.Sanitize
module Chaos = Blitz_guard.Chaos
module Noise = Blitz_robust.Noise
module Regret = Blitz_robust.Regret
module Parallel_blitzsplit = Blitz_parallel.Parallel_blitzsplit
module Registry = Blitz_engine.Registry
module Engine = Blitz_engine.Engine
module Plan_cache = Blitz_cache.Plan_cache
module Obs = Blitz_obs.Obs

(* ---- shared converters ---- *)

let model_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Cost_model.of_string s) in
  let print ppf (m : Cost_model.t) = Format.pp_print_string ppf m.Cost_model.name in
  Arg.conv (parse, print)

let topology_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Topology.of_string s) in
  let print ppf t = Format.pp_print_string ppf (Topology.name t) in
  Arg.conv (parse, print)

let model_arg =
  Arg.(
    value
    & opt model_conv Cost_model.kdnl
    & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"Cost model: k0, ksm, kdnl, or min:A,B.")

(* ---- problem acquisition: SQL script or workload flags ---- *)

let sql_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sql" ] ~docv:"FILE" ~doc:"SQL script to optimize ('-' reads standard input).")

let n_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n" ] ~docv:"N" ~doc:"Number of relations for a generated workload.")

let topology_arg =
  Arg.(
    value
    & opt topology_conv Topology.Chain
    & info [ "t"; "topology" ] ~docv:"TOPOLOGY"
        ~doc:"Join-graph topology for a generated workload: chain, cycle+K, star, clique, grid:RxC.")

let mean_card_arg =
  Arg.(
    value
    & opt float 100.0
    & info [ "mean-card" ] ~docv:"MU" ~doc:"Geometric-mean base-relation cardinality.")

let variability_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "variability" ] ~docv:"V" ~doc:"Cardinality variability in [0, 1].")

let read_file path =
  if path = "-" then In_channel.input_all stdin
  else In_channel.with_open_text path In_channel.input_all

type problem = {
  catalog : Catalog.t;
  graph : Join_graph.t;
  label : string;
  required_order : int option;  (** From the SQL ORDER BY, when present. *)
}

let acquire_problem sql n topology mean_card variability =
  match (sql, n) with
  | Some _, Some _ -> Error "--sql and -n are mutually exclusive"
  | Some path, None -> (
    match Binder.parse_and_bind (read_file path) with
    | Error e -> Error e
    | Ok [] -> Error "the script contains no SELECT statement"
    | Ok (q :: rest) ->
      if rest <> [] then
        Printf.eprintf "note: script has %d queries; optimizing the first\n" (List.length rest + 1);
      Ok
        {
          catalog = q.Binder.catalog;
          graph = q.Binder.graph;
          label = path;
          required_order = q.Binder.required_order;
        })
  | None, Some n -> (
    match
      Workload.spec ~n ~topology ~model:Cost_model.naive ~mean_card ~variability
    with
    | spec ->
      let catalog, graph = Workload.problem spec in
      Ok { catalog; graph; label = Workload.describe spec; required_order = None }
    | exception Invalid_argument msg -> Error msg)
  | None, None -> Error "provide either --sql FILE or -n N (see --help)"

let problem_term =
  let combine sql n topology mean_card variability =
    match acquire_problem sql n topology mean_card variability with
    | Ok p -> `Ok p
    | Error msg -> `Error (false, msg)
  in
  Term.(
    ret (const combine $ sql_arg $ n_arg $ topology_arg $ mean_card_arg $ variability_arg))

(* ---- observability surface (shared by optimize and explain) ---- *)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable the metrics registry for this run and dump it afterwards: bare --metrics \
           prints the Prometheus text exposition to standard output; --metrics=FILE writes it \
           to FILE (JSON instead of Prometheus text when FILE ends in .json).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable structured tracing for this run and write the spans to FILE as a Chrome-trace \
           JSON array (load it in chrome://tracing or ui.perfetto.dev).")

(* Arm the switches before the run; everything the optimizer records
   between the two calls is what gets exported. *)
let obs_arm ~metrics ~trace =
  if metrics <> None then Obs.Metrics.set_enabled true;
  if trace <> None then Obs.Trace.set_enabled true

let obs_report ~metrics ~trace =
  (match trace with
  | None -> ()
  | Some path ->
    Obs.Trace.write_chrome path;
    Printf.printf "trace:      wrote %s (%d span(s))\n" path (List.length (Obs.Trace.events ())));
  match metrics with
  | None -> ()
  | Some "-" ->
    print_newline ();
    print_string (Obs.Metrics.to_prometheus ())
  | Some path ->
    let contents =
      if Filename.check_suffix path ".json" then
        Blitz_util.Json.to_string ~indent:true (Obs.Metrics.to_json ()) ^ "\n"
      else Obs.Metrics.to_prometheus ()
    in
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents);
    Printf.printf "metrics:    wrote %s\n" path

(* ---- plan-cache surface (shared by optimize and explain) ---- *)

let cache_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Enable the canonicalized plan cache for this run: structurally identical queries \
           (up to relation renaming) are answered from the cache instead of re-running the \
           DP.  Combine with --repeat to see hits within one invocation.")

let cache_mb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-mb" ] ~docv:"MB"
        ~doc:"Plan-cache memory budget in mebibytes (default 64; implies --cache).")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Disable the plan cache (overrides --cache and --cache-mb).")

let cache_term =
  let combine cache cache_mb no_cache =
    if no_cache then `Ok None
    else if not (cache || cache_mb <> None) then `Ok None
    else
      match
        Plan_cache.create ?max_bytes:(Option.map (fun mb -> mb * 1024 * 1024) cache_mb) ()
      with
      | c -> `Ok (Some c)
      | exception Invalid_argument msg -> `Error (false, msg)
  in
  Term.(ret (const combine $ cache_arg $ cache_mb_arg $ no_cache_arg))

let repeat_arg =
  Arg.(
    value
    & opt int 1
    & info [ "repeat" ] ~docv:"K"
        ~doc:
          "Optimize the query K times through one session (with --cache, every run after the \
           first is a cache hit).")

let print_cache_line cache =
  match cache with
  | None -> ()
  | Some c ->
    let s = Plan_cache.stats c in
    Printf.printf
      "cache:      %d hit(s) (%d rebased), %d miss(es), %d insertion(s), %d shape seed(s), %d \
       band seed(s)\n"
      s.Plan_cache.hits s.Plan_cache.rebases s.Plan_cache.misses s.Plan_cache.insertions
      s.Plan_cache.shape_hits s.Plan_cache.band_hits

(* ---- optimize ---- *)

let optimize_cmd =
  let threshold_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"COST"
          ~doc:"Plan-cost threshold (Section 6.4); re-optimizes with a raised threshold on failure.")
  in
  let growth_arg =
    Arg.(
      value
      & opt float 1e4
      & info [ "growth" ] ~docv:"FACTOR" ~doc:"Threshold growth factor between passes.")
  in
  let dump_table_arg =
    Arg.(value & flag & info [ "dump-table" ] ~doc:"Print the full DP table (small queries only).")
  in
  let annotate_arg =
    Arg.(
      value & flag
      & info [ "annotate" ] ~doc:"Attach the cheapest join algorithm to each node (Section 6.5).")
  in
  let execute_arg =
    Arg.(
      value & flag
      & info [ "execute" ]
          ~doc:"Generate synthetic data realizing the statistics, run the plan, and compare \
                estimated vs. actual cardinalities.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Data-generation seed.")
  in
  let hybrid_arg =
    Arg.(
      value & flag
      & info [ "hybrid" ]
          ~doc:"Use the Section 7 hybrid (DP windows inside randomized search) instead of                 exhaustive blitzsplit — required beyond the 24-relation DP-table cap, useful                 sooner.")
  in
  let degrade_arg =
    Arg.(
      value & flag
      & info [ "degrade" ]
          ~doc:"Use the resilient driver: try exact search first, degrade through thresholded, \
                hybrid, IKKBZ and greedy tiers as budgets bite, and report the provenance of \
                the winning plan.  Implied by --deadline-ms and --max-table-mb.")
  in
  let deadline_ms_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Wall-clock budget in milliseconds.  The exact search is interrupted when it \
                expires and a cheaper tier supplies the plan (implies --degrade).")
  in
  let max_table_mb_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-table-mb" ] ~docv:"MB"
          ~doc:"Memory ceiling for the DP table in mebibytes, checked before allocation.  \
                Queries whose table would not fit skip straight to table-free tiers \
                (implies --degrade).")
  in
  let num_domains_arg =
    Arg.(
      value
      & opt int 1
      & info [ "num-domains" ] ~docv:"N"
          ~doc:"Run the exhaustive DP rank-parallel on N OCaml domains (0 means the \
                runtime-recommended count).  The chosen plan and cost are bit-identical to \
                the sequential search at any N.  Applies to the plain, --threshold and \
                --degrade paths.")
  in
  let physical_arg =
    Arg.(
      value & flag
      & info [ "physical" ]
          ~doc:"Optimize with interesting sort orders (Section 6.5 extension): print a                 physical plan with sorts, merge joins and nested loops.  Honors the                 query's ORDER BY.")
  in
  let scramble_arg =
    Arg.(
      value & flag
      & info [ "scramble-catalog" ]
          ~doc:"Corrupt every cardinality with seeded NaN/infinite/negative garbage before \
                optimizing (the Chaos Catalog_scrambled fault).  The guarded driver repairs the \
                statistics with fabricated substitutes and degrades to the estimate-free \
                simpli-squared tier — a deterministic demonstration of planning without \
                statistics (implies --degrade).")
  in
  let corrupt_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "corrupt-seed" ] ~docv:"SEED"
          ~doc:"Seed for --scramble-catalog corruption (independent of --seed).")
  in
  let optimizer_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "optimizer" ] ~docv:"NAME"
          ~doc:"Dispatch through a specific registry entry (e.g. dpccp, dpconv; 'blitz \
                compare' lists them) instead of the exact/thresholded default.  Eligibility \
                is checked against the entry's capability metadata, so e.g. dpccp accepts \
                sparse queries far beyond the dense DP-table cap.")
  in
  let multiway_arg =
    Arg.(
      value & flag
      & info [ "multiway" ]
          ~doc:"Let capable optimizers (exact, thresholded, dpccp) plan n-ary hash-join nodes \
                on cyclic cores, costed by an AGM-derived fractional edge cover.  Acyclic \
                queries are structurally unaffected; incapable optimizers ignore the flag.")
  in
  let run problem model threshold growth dump_table annotate execute seed physical hybrid degrade
      deadline_ms max_table_mb num_domains cache repeat metrics trace scramble corrupt_seed
      multiway optimizer_name =
    obs_arm ~metrics ~trace;
    let names = Catalog.names problem.catalog in
    let num_domains =
      if num_domains = 0 then Parallel_blitzsplit.recommended_domains ()
      else if num_domains < 0 || num_domains > 128 then begin
        Printf.eprintf "blitz: --num-domains %d outside [0, 128]\n" num_domains;
        exit 1
      end
      else num_domains
    in
    if repeat < 1 then begin
      Printf.eprintf "blitz: --repeat %d must be at least 1\n" repeat;
      exit 1
    end;
    (if scramble then begin
      (* Catalog corruption is only survivable through the guarded
         driver: Sanitize fabricates substitute cardinalities and the
         cascade lands on the estimate-free tier. *)
      let input = Chaos.input_of problem.catalog problem.graph in
      let corrupted, faults = Chaos.scramble_catalog ~seed:corrupt_seed input in
      match
        Guard.optimize_input ~seed ~num_domains model ~relations:corrupted.Chaos.relations
          ~edges:corrupted.Chaos.edges ()
      with
      | Error e ->
        Printf.eprintf "blitz: %s\n" (Guard.error_message e);
        exit 1
      | Ok o ->
        let p = o.Guard.provenance in
        Printf.printf "query:      %s\n" problem.label;
        Printf.printf "model:      %s (guarded driver, scrambled catalog)\n"
          model.Cost_model.name;
        List.iter
          (fun f -> Printf.printf "fault:      %s\n" (Chaos.fault_message f))
          faults;
        Printf.printf "repairs:    %d (statistics fabricated by the sanitizer)\n"
          (List.length o.Guard.repairs);
        Printf.printf "plan:       %s\n"
          (Plan.to_compact_string ~names:(Catalog.names o.Guard.catalog) o.Guard.plan);
        Printf.printf "tier:       %s\n" (Degrade.tier_name p.Degrade.winner);
        Printf.printf "provenance:\n";
        List.iter (fun a -> Format.printf "  %a@." Degrade.pp_attempt a) p.Degrade.attempts
    end
    (* Any budget flag implies the resilient driver: a deadline or memory
       ceiling is only enforceable when degradation is allowed. *)
    else if degrade || deadline_ms <> None || max_table_mb <> None then begin
      let budget =
        match
          Budget.create ?deadline_ms
            ?max_table_bytes:(Option.map (fun mb -> mb * 1024 * 1024) max_table_mb)
            ()
        with
        | budget -> budget
        | exception Invalid_argument msg ->
          Printf.eprintf "blitz: %s\n" msg;
          exit 1
      in
      (* A cache-carrying session lets the guarded driver answer repeats
         from the cache; without --cache the driver runs exactly as
         before (no session). *)
      let guarded () =
        match cache with
        | None ->
          Guard.optimize ~budget ~seed ~num_domains ~multiway model problem.catalog
            problem.graph
        | Some c ->
          Engine.with_session ~model ~num_domains ~cache:c (fun session ->
              let rec go k last =
                if k = 0 then last
                else
                  go (k - 1)
                    (Guard.optimize ~budget ~session ~seed ~num_domains ~multiway model
                       problem.catalog problem.graph)
              in
              go (repeat - 1)
                (Guard.optimize ~budget ~session ~seed ~num_domains ~multiway model
                   problem.catalog problem.graph))
      in
      match guarded () with
      | Error e ->
        Printf.eprintf "blitz: %s\n" (Guard.error_message e);
        exit 1
      | Ok o ->
        let p = o.Guard.provenance in
        Printf.printf "query:      %s\n" problem.label;
        Printf.printf "model:      %s (guarded driver)\n" model.Cost_model.name;
        Printf.printf "plan:       %s\n" (Plan.to_compact_string ~names o.Guard.plan);
        Printf.printf "cost:       %g%s\n" o.Guard.cost
          (if p.Degrade.winner = Degrade.Exact then "" else " (not guaranteed optimal)");
        Printf.printf "tier:       %s%s\n"
          (Degrade.tier_name p.Degrade.winner)
          (if o.Guard.from_cache then " (plan served from session cache)" else "");
        Printf.printf "time:       %.4fs\n" (p.Degrade.total_ms /. 1000.0);
        Printf.printf "provenance:\n";
        List.iter
          (fun a -> Format.printf "  %a@." Degrade.pp_attempt a)
          p.Degrade.attempts;
        print_cache_line cache
    end
    else if hybrid then begin
      let t0 = Sys.time () in
      let outcome =
        Registry.optimize ~optimizer:"hybrid" (Registry.ctx ~seed model)
          (Registry.problem ~graph:problem.graph problem.catalog)
      in
      let plan =
        match outcome.Registry.plan with
        | Some p -> p
        | None -> failwith "hybrid: no plan"
      in
      Printf.printf "query:      %s\n" problem.label;
      Printf.printf "model:      %s (hybrid search)\n" model.Cost_model.name;
      Printf.printf "plan:       %s\n" (Plan.to_compact_string ~names plan);
      Printf.printf "cost:       %g (not guaranteed optimal)\n" outcome.Registry.cost;
      Printf.printf "time:       %.4fs (%s)\n" (Sys.time () -. t0)
        (Option.value ~default:"" outcome.Registry.note)
    end
    else
    if physical then begin
      let module O = Blitz_core.Blitzsplit_orders in
      let r = O.optimize ?required_order:problem.required_order problem.catalog problem.graph in
      let rec render = function
        | O.Scan i -> names.(i)
        | O.Sort (p, e) -> Printf.sprintf "sort[e%d](%s)" e (render p)
        | O.Nested_loop (l, r) -> Printf.sprintf "NL(%s, %s)" (render l) (render r)
        | O.Merge_join (l, r, e) -> Printf.sprintf "MERGE[e%d](%s, %s)" e (render l) (render r)
      in
      Printf.printf "query:      %s\n" problem.label;
      Printf.printf "physical:   %s\n" (render r.O.plan);
      Printf.printf "cost:       %g\n" r.O.cost;
      Printf.printf "order:      %s\n"
        (match O.order_of r.O.plan with
        | Some e -> Printf.sprintf "sorted on edge %d" e
        | None -> "none");
      Printf.printf "order-blind: %g (min(ksm, kdnl), no reuse)\n"
        (O.sm_dnl_reference_cost problem.catalog problem.graph)
    end
    else begin
    (match optimizer_name with
    | Some name -> (
      (* An explicit optimizer brings its own caps: eligibility replaces
         the blanket dense-table size check, which is what lets dpccp
         take sparse queries past the 24-relation cap. *)
      match Registry.find name with
      | None ->
        Printf.eprintf "blitz: unknown optimizer %S (known: %s)\n" name
          (String.concat ", " (Registry.names ()));
        exit 1
      | Some entry -> (
        match
          Registry.eligible entry
            ~connected:(Join_graph.is_connected problem.graph)
            ~n:(Catalog.n problem.catalog)
            ~is_tree:(B.Ikkbz.is_tree problem.graph)
        with
        | Ok () -> ()
        | Error reason ->
          Printf.eprintf "blitz: %s is not eligible here: %s\n" name reason;
          exit 1))
    | None ->
      if Catalog.n problem.catalog > Dp_table.max_relations then begin
        Printf.eprintf
          "blitz: %d relations exceed the %d-relation DP table; use --hybrid for large queries\n"
          (Catalog.n problem.catalog) Dp_table.max_relations;
        exit 1
      end);
    Engine.with_session ~model ~num_domains ?cache (fun session ->
    let prob = Registry.problem ~graph:problem.graph problem.catalog in
    let optimizer =
      match optimizer_name with
      | Some name -> name
      | None -> if threshold = None then "exact" else "thresholded"
    in
    let t0 = Unix.gettimeofday () in
    (* With --repeat the same query streams through the session K times:
       cold the first time, answered from the cache (when enabled) after. *)
    let run_once () =
      match threshold with
      | None -> Engine.optimize ~optimizer ~multiway session prob
      | Some _ ->
        (* An explicit threshold carries the --growth escalation policy,
           which lives on the raw registry ctx (and bypasses the cache:
           thresholded outcomes under a caller threshold are
           caller-dependent). *)
        Registry.optimize ~optimizer (Engine.ctx ?threshold ~growth ~multiway session) prob
    in
    let outcome = ref (run_once ()) in
    for _ = 2 to repeat do
      outcome := run_once ()
    done;
    let outcome = !outcome in
    let elapsed = Unix.gettimeofday () -. t0 in
    Printf.printf "query:      %s\n" problem.label;
    Printf.printf "model:      %s\n" model.Cost_model.name;
    if num_domains > 1 then Printf.printf "domains:    %d (rank-parallel DP)\n" num_domains;
    let plan =
      match outcome.Registry.plan with
      | Some p -> p
      | None -> failwith "Blitzsplit.best_plan_exn: no plan under the given threshold"
    in
    Printf.printf "plan:       %s\n" (Plan.to_compact_string ~names plan);
    Printf.printf "cost:       %g\n" outcome.Registry.cost;
    Printf.printf "cardinality:%g\n" (Plan.cardinality problem.catalog problem.graph plan);
    Printf.printf "shape:      %s, %d cartesian product(s)\n"
      (if Plan.is_left_deep plan then "left-deep" else "bushy")
      (Plan.cartesian_join_count problem.graph plan);
    if multiway then
      Printf.printf "multiway:   %d n-ary node(s) in the winning plan\n"
        (Plan.multiway_count plan);
    Printf.printf "time:       %.4fs (%d pass(es)%s)\n" elapsed outcome.Registry.passes
      (if repeat > 1 then Printf.sprintf ", %d runs" repeat else "");
    print_cache_line cache;
    if dump_table then begin
      print_newline ();
      match outcome.Registry.table with
      | Some table -> print_string (Dp_table.dump ~names table)
      | None -> ()
    end;
    if annotate then begin
      print_newline ();
      let annotated =
        Plan.annotate
          ~algorithms:[ ("sort-merge", Cost_model.sort_merge); ("nested-loops", Cost_model.kdnl) ]
          problem.catalog problem.graph plan
      in
      Format.printf "%a@." (Plan.pp_annotated ~names ()) annotated
    end;
    if execute then begin
      print_newline ();
      let module Datagen = Blitz_exec.Datagen in
      let module Executor = Blitz_exec.Executor in
      let rng = Rng.create ~seed in
      match Datagen.generate ~rng problem.catalog problem.graph with
      | exception Invalid_argument msg -> Printf.printf "cannot execute: %s\n" msg
      | data ->
        let comparisons = Executor.estimate_vs_actual data plan in
        Printf.printf "%-24s %14s %14s %8s\n" "intermediate" "estimated" "actual" "ratio";
        List.iter
          (fun { Executor.at; estimated; actual } ->
            Printf.printf "%-24s %14.1f %14.0f %8.3f\n"
              (Blitz_bitset.Relset.to_string ~names at)
              estimated actual
              (if estimated > 0.0 then actual /. estimated else Float.nan))
          comparisons
    end)
    end);
    obs_report ~metrics ~trace
  in
  let term =
    Term.(
      const run $ problem_term $ model_arg $ threshold_arg $ growth_arg $ dump_table_arg
      $ annotate_arg $ execute_arg $ seed_arg $ physical_arg $ hybrid_arg $ degrade_arg
      $ deadline_ms_arg $ max_table_mb_arg $ num_domains_arg $ cache_term $ repeat_arg
      $ metrics_arg $ trace_arg $ scramble_arg $ corrupt_seed_arg $ multiway_arg
      $ optimizer_arg)
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Optimize a join query with the blitzsplit algorithm")
    term

(* ---- compare ---- *)

let compare_cmd =
  let run problem model =
    let n = Catalog.n problem.catalog in
    let is_tree = B.Ikkbz.is_tree problem.graph in
    let prob = Registry.problem ~graph:problem.graph problem.catalog in
    (* One session for the whole sweep: every DP-backed method reuses
       the same arena-pooled table buffer. *)
    Engine.with_session ~model (fun session ->
        let optimum = ref Float.nan in
        let rows =
          Registry.all ()
          |> List.filter_map (fun (e : Registry.entry) ->
                 if e.Registry.name = "bruteforce" then
                   (* The oracle enumerates every bushy plan — worth
                      running in tests, not in an interactive sweep. *)
                   Some [| e.Registry.name; "-"; "-"; "skipped (exhaustive oracle)" |]
                 else
                   match
                     Registry.eligible e
                       ~connected:(Join_graph.is_connected problem.graph)
                       ~n ~is_tree
                   with
                   | Error reason -> Some [| e.Registry.name; "-"; "-"; reason |]
                   | Ok () ->
                     let t0 = Sys.time () in
                     let o = Engine.optimize ~optimizer:e.Registry.name session prob in
                     let dt = Sys.time () -. t0 in
                     if e.Registry.name = "exact" then optimum := o.Registry.cost;
                     Some
                       [|
                         e.Registry.name;
                         Printf.sprintf "%.4f" dt;
                         (if Float.is_finite o.Registry.cost then
                            Printf.sprintf "%.4f" (o.Registry.cost /. !optimum)
                          else "no plan");
                         Option.value ~default:e.Registry.summary o.Registry.note;
                       |])
        in
        Printf.printf "query: %s   model: %s\n\n" problem.label model.Cost_model.name;
        Blitz_util.Ascii_table.print
          ~header:[| "method"; "time (s)"; "cost / optimal"; "note" |]
          (Array.of_list rows))
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every registered optimizer on one query")
    Term.(const run $ problem_term $ model_arg)

(* ---- workload ---- *)

let workload_cmd =
  let run n topology mean_card variability =
    match Workload.spec ~n ~topology ~model:Cost_model.naive ~mean_card ~variability with
    | exception Invalid_argument msg -> `Error (false, msg)
    | spec ->
      let catalog, graph = Workload.problem spec in
      Printf.printf "-- %s\n" (Workload.describe spec);
      for i = 0 to Catalog.n catalog - 1 do
        Printf.printf "CREATE TABLE %s (CARDINALITY %.6g);\n" (Catalog.name catalog i)
          (Catalog.card catalog i)
      done;
      let from =
        String.concat ", " (Array.to_list (Catalog.names catalog))
      in
      Printf.printf "SELECT * FROM %s\n" from;
      let edges = Join_graph.edges graph in
      List.iteri
        (fun i (a, b, sel) ->
          Printf.printf "%s %s.key%d = %s.key%d {%.9g}\n"
            (if i = 0 then "WHERE" else "  AND")
            (Catalog.name catalog a) b (Catalog.name catalog b) a sel)
        edges;
      Printf.printf ";\n";
      `Ok ()
  in
  let n_req =
    Arg.(required & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"Number of relations.")
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Emit an appendix-style benchmark workload as a SQL script (round-trips through \
             'blitz optimize --sql')")
    Term.(ret (const run $ n_req $ topology_arg $ mean_card_arg $ variability_arg))

(* ---- explain ---- *)

let explain_cmd =
  let optimizer_arg =
    Arg.(
      value
      & opt string "exact"
      & info [ "o"; "optimizer" ] ~docv:"NAME"
          ~doc:"Registry entry to explain with (default exact; 'blitz compare' lists them).")
  in
  let num_domains_arg =
    Arg.(
      value
      & opt int 1
      & info [ "num-domains" ] ~docv:"N" ~doc:"Run DP-backed optimizers rank-parallel on N domains.")
  in
  let threshold_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"COST"
          ~doc:"Initial plan-cost threshold for the thresholded optimizer.")
  in
  let multiway_arg =
    Arg.(
      value & flag
      & info [ "multiway" ]
          ~doc:"Let capable optimizers plan n-ary hash-join nodes on cyclic cores; the plan \
                tree renders each with its fractional edge-cover weights and AGM bound.")
  in
  let run problem model optimizer num_domains threshold multiway cache repeat metrics trace =
    (* Explain always records: the whole point is showing what the run
       did.  The process is this one query, so the metrics ARE the run's
       deltas. *)
    Obs.Metrics.set_enabled true;
    obs_arm ~metrics ~trace;
    if repeat < 1 then begin
      Printf.eprintf "blitz: --repeat %d must be at least 1\n" repeat;
      exit 1
    end;
    let names = Catalog.names problem.catalog in
    let entry =
      match Registry.find optimizer with
      | Some e -> e
      | None ->
        Printf.eprintf "blitz: unknown optimizer %S (known: %s)\n" optimizer
          (String.concat ", " (Registry.names ()));
        exit 1
    in
    let n = Catalog.n problem.catalog in
    (match
       Registry.eligible entry
         ~connected:(Join_graph.is_connected problem.graph)
         ~n ~is_tree:(B.Ikkbz.is_tree problem.graph)
     with
    | Ok () -> ()
    | Error reason ->
      Printf.eprintf "blitz: %s is not eligible here: %s\n" optimizer reason;
      exit 1);
    let t0 = Unix.gettimeofday () in
    let outcome =
      Engine.with_session ~model ~num_domains ?cache (fun session ->
          let prob = Registry.problem ~graph:problem.graph problem.catalog in
          let o = ref (Engine.optimize ~optimizer ?threshold ~multiway session prob) in
          (* Repeats replay the query through the session; with --cache
             every run after the first is answered from the cache, and
             the metric deltas below show the hit/miss counters. *)
          for _ = 2 to repeat do
            o := Engine.optimize ~optimizer ?threshold ~multiway session prob
          done;
          let o = !o in
          { o with Registry.table = None; counters = Option.map Counters.copy o.Registry.counters })
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let plan =
      match outcome.Registry.plan with
      | Some p -> p
      | None ->
        Printf.eprintf "blitz: %s produced no plan\n" optimizer;
        exit 1
    in
    Printf.printf "query:      %s\n" problem.label;
    Printf.printf "model:      %s\n" model.Cost_model.name;
    Printf.printf "optimizer:  %s%s\n" optimizer
      (if entry.Registry.caps.Registry.exact then " (exact)" else " (heuristic)");
    if num_domains > 1 then Printf.printf "domains:    %d (rank-parallel DP)\n" num_domains;
    Printf.printf "plan:       %s\n" (Plan.to_compact_string ~names plan);
    Printf.printf "cost:       %g\n" outcome.Registry.cost;
    if outcome.Registry.passes > 1 || Float.is_finite outcome.Registry.final_threshold then
      Printf.printf "passes:     %d (final threshold %g)\n" outcome.Registry.passes
        outcome.Registry.final_threshold;
    (match outcome.Registry.note with
    | Some note -> Printf.printf "note:       %s\n" note
    | None -> ());
    print_cache_line cache;
    Printf.printf "time:       %.4fs\n" elapsed;
    (* The plan tree with the DP table's view of every node: the
       relation subset, its estimated cardinality, and the cumulative
       cost of the subtree rooted there. *)
    Printf.printf "\nplan tree (per-subset cardinality / cumulative cost):\n";
    let cartesian_here p l r =
      Plan.cartesian_join_count problem.graph p
      - Plan.cartesian_join_count problem.graph l
      - Plan.cartesian_join_count problem.graph r
      > 0
    in
    let rec render indent p =
      match p with
      | Plan.Leaf i ->
        Printf.printf "%sscan %s  card=%g\n" indent names.(i) (Catalog.card problem.catalog i)
      | Plan.Join (l, r) ->
        Printf.printf "%sjoin %s%s  card=%g  cost=%g\n" indent
          (Blitz_bitset.Relset.to_string ~names (Plan.relations p))
          (if cartesian_here p l r then " (cartesian)" else "")
          (Plan.cardinality problem.catalog problem.graph p)
          (Plan.cost model problem.catalog problem.graph p);
        render (indent ^ "  ") l;
        render (indent ^ "  ") r
      | Plan.Multiway { inputs; cover; _ } ->
        (* The AGM bound and cover are re-solved against this problem's
           statistics, matching what the cost column charges. *)
        let solved = Blitz_cost.Agm.of_join_graph problem.catalog problem.graph (Plan.relations p) in
        let cover = if solved.Blitz_cost.Agm.weights = [] then cover else solved.Blitz_cost.Agm.weights in
        Printf.printf "%smultiway %s  card=%g  agm=%g  cost=%g\n" indent
          (Blitz_bitset.Relset.to_string ~names (Plan.relations p))
          (Plan.cardinality problem.catalog problem.graph p)
          solved.Blitz_cost.Agm.bound
          (Plan.cost model problem.catalog problem.graph p);
        if cover <> [] then
          Printf.printf "%s  cover:%s\n" indent
            (String.concat ""
               (List.map
                  (fun (members, w) ->
                    Printf.sprintf " {%s}=%g"
                      (String.concat ","
                         (List.map
                            (fun i -> if i < Array.length names then names.(i) else string_of_int i)
                            members))
                      w)
                  cover));
        List.iter (render (indent ^ "  ")) inputs
    in
    render "  " plan;
    (match outcome.Registry.counters with
    | Some c when c.Counters.loop_iters > 0 || c.Counters.ccp_pairs > 0 ->
      Printf.printf "\nsplit-loop counters (this run):\n";
      Format.printf "  @[<v>%a@]@." Counters.pp c
    | Some _ | None -> ());
    (* Which monomorphized split kernel the model dispatched to, with the
       measured rate when a blitzsplit pass fed the per-iteration
       histogram (dpccp-only runs have the kernel but no rate). *)
    (match outcome.Registry.counters with
    | Some c when c.Counters.loop_iters > 0 ->
      let h = Blitz_obs.Perf.split_loop_ns_per_iter in
      let passes = Obs.Metrics.histogram_count h in
      let rate =
        if passes > 0 then
          Printf.sprintf ", ~%.1f ns/split over %d pass%s"
            (Obs.Metrics.histogram_sum h /. float_of_int passes)
            passes
            (if passes = 1 then "" else "es")
        else ""
      in
      Printf.printf "\nkernel:     %s%s\n" (Blitz_core.Split_loop.variant model) rate
    | Some _ | None -> ());
    (* The run's metric deltas: counters and gauges are deterministic
       for a given query; histograms are shown as observation counts
       only (sums and buckets are timing-dependent — they go to
       --metrics/--trace files, not here). *)
    Printf.printf "\nmetrics (this run):\n";
    List.iter
      (function
        | Obs.Metrics.Counter { name; labels; value; _ } when value > 0 ->
          Printf.printf "  %s%s %d\n" name
            (match labels with
            | [] -> ""
            | l -> "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l) ^ "}")
            value
        | Obs.Metrics.Gauge { name; value; _ } when value <> 0.0 ->
          Printf.printf "  %s %g\n" name value
        | Obs.Metrics.Histogram { name; count; _ } when count > 0 ->
          Printf.printf "  %s count=%d\n" name count
        | _ -> ())
      (Obs.Metrics.snapshot ());
    obs_report ~metrics ~trace
  in
  let term =
    Term.(
      const run $ problem_term $ model_arg $ optimizer_arg $ num_domains_arg $ threshold_arg
      $ multiway_arg $ cache_term $ repeat_arg $ metrics_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Optimize a query and print the chosen plan tree with per-subset cardinality and \
             cost, the split-loop counters, and the run's metric deltas")
    term

(* ---- regret ---- *)

let regret_cmd =
  let mode_conv =
    let parse s = Result.map_error (fun e -> `Msg e) (Noise.mode_of_string s) in
    let print ppf m = Format.pp_print_string ppf (Noise.mode_name m) in
    Arg.conv (parse, print)
  in
  let n_arg =
    Arg.(
      value & opt int 9
      & info [ "n" ] ~docv:"N" ~doc:"Number of relations per generated workload (default 9).")
  in
  let mode_arg =
    Arg.(
      value
      & opt mode_conv Noise.Lognormal
      & info [ "mode" ] ~docv:"MODE" ~doc:"Noise model: lognormal or adversarial.")
  in
  let levels_arg =
    Arg.(
      value
      & opt (list float) [ 0.0; 0.5; 1.0; 2.0 ]
      & info [ "levels" ] ~docv:"L,..."
          ~doc:"Error levels in decades (standard deviation for lognormal, band edge for \
                adversarial).")
  in
  let seeds_arg =
    Arg.(
      value & opt int 3
      & info [ "seeds" ] ~docv:"K" ~doc:"Number of perturbation seeds per cell (seeds 1..K).")
  in
  let optimizers_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "o"; "optimizers" ] ~docv:"NAME,..."
          ~doc:"Optimizers to sweep (default: every registry entry except bruteforce).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the full report (per-seed samples included) as JSON.")
  in
  let multiway_arg =
    Arg.(
      value & flag
      & info [ "multiway" ]
          ~doc:"Let capable optimizers plan n-ary nodes against the perturbed statistics; \
                regret still re-costs them with the AGM bound re-solved under the truth.")
  in
  let run model n mode levels seeds optimizers json multiway =
    if seeds < 1 then `Error (false, Printf.sprintf "--seeds %d must be at least 1" seeds)
    else
      let known = Registry.names () in
      match
        Option.iter
          (List.iter (fun o ->
               if not (List.mem o known) then
                 failwith
                   (Printf.sprintf "unknown optimizer %S (known: %s)" o
                      (String.concat ", " known))))
          optimizers
      with
      | exception Failure msg -> `Error (false, msg)
      | () -> (
        match
          Regret.run ~mode ?optimizers ~levels ~seeds:(List.init seeds (fun i -> i + 1))
            ~multiway ~n model
        with
        | exception Invalid_argument msg -> `Error (false, msg)
        | report ->
          if json then
            print_string
              (Blitz_util.Json.to_string ~indent:true (Regret.report_to_json report) ^ "\n")
          else Format.printf "%a@." Regret.pp report;
          `Ok ())
  in
  Cmd.v
    (Cmd.info "regret"
       ~doc:"Measure plan-cost regret under cardinality-estimate error: every optimizer plans \
             on a seeded noise-perturbed catalog and is judged under the true statistics \
             (regret = true cost of its choice / true optimal cost)")
    Term.(
      ret (const run $ model_arg $ n_arg $ mode_arg $ levels_arg $ seeds_arg $ optimizers_arg
           $ json_arg $ multiway_arg))

(* ---- counters ---- *)

let counters_cmd =
  let run problem model =
    let counters = Counters.create () in
    let _ =
      Registry.optimize
        (Registry.ctx ~counters model)
        (Registry.problem ~graph:problem.graph problem.catalog)
    in
    let n = Catalog.n problem.catalog in
    Printf.printf "query: %s   model: %s\n\n" problem.label model.Cost_model.name;
    Format.printf "%a@." Counters.pp counters;
    Printf.printf "\nanalytic bounds (Section 3.3): loop iters = %d, kappa'' in [%.0f, %.0f]\n"
      (Counters.exact_loop_iters n)
      (Counters.predicted_dprime_lower n)
      (Counters.predicted_dprime_upper n)
  in
  Cmd.v
    (Cmd.info "counters" ~doc:"Show split-loop instrumentation for one optimization")
    Term.(const run $ problem_term $ model_arg)

(* ---- optimizers: the registry capability table ---- *)

let optimizers_cmd =
  let run () =
    let entries = Registry.all () in
    let yn b = if b then "yes" else "-" in
    Printf.printf "%-22s %-5s %-5s %-5s %-5s %-4s %-4s %-7s %-5s %-3s\n" "name" "max_n" "exact"
      "cache" "tree" "conn" "par" "dexempt" "sfree" "mw";
    List.iter
      (fun (e : Registry.entry) ->
        let c = e.Registry.caps in
        Printf.printf "%-22s %-5s %-5s %-5s %-5s %-4s %-4s %-7s %-5s %-3s\n" e.Registry.name
          (match c.Registry.max_n with Some n -> string_of_int n | None -> "-")
          (yn c.Registry.exact) (yn c.Registry.cacheable) (yn c.Registry.tree_only)
          (yn c.Registry.connected_only) (yn c.Registry.parallelizable)
          (yn c.Registry.deadline_exempt) (yn c.Registry.stats_free) (yn c.Registry.multiway))
      entries;
    Printf.printf "\n%d optimizers registered\n" (List.length entries)
  in
  Cmd.v
    (Cmd.info "optimizers"
       ~doc:
         "Dump the optimizer registry's capability table (the source of truth the \
          documentation tables are checked against)")
    Term.(const run $ const ())

(* ---- serve / query: the NDJSON optimizer server and a line client ---- *)

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind (serve) or connect to (query).")

let serve_cmd =
  let port_arg =
    Arg.(
      value & opt int 7411
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on (0 picks an ephemeral one).")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"K" ~doc:"Optimizer worker domains, each owning one engine session.")
  in
  let tenants_arg =
    Arg.(
      value & opt string ""
      & info [ "tenants" ] ~docv:"SPEC"
          ~doc:
            "Tenant table, e.g. 'acme:deadline-ms=50,table-mb=8,rps=100,burst=20;beta:rps=5'. \
             Settings: deadline-ms, table-mb, rps, burst (all optional).  A 'default' tenant \
             is always available; name it in SPEC to limit it.")
  in
  let serve_cache_mb_arg =
    Arg.(
      value & opt int 4
      & info [ "cache-mb" ] ~docv:"MB" ~doc:"Shared plan-cache budget in mebibytes (default 4).")
  in
  let serve_no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Run without a plan cache.")
  in
  let shed_queue_arg =
    Arg.(
      value & opt int 16
      & info [ "shed-queue" ] ~docv:"DEPTH"
          ~doc:"Queue depth at which requests start shedding through the degrade cascade.")
  in
  let shed_deadline_arg =
    Arg.(
      value & opt float 5.
      & info [ "shed-deadline-ms" ] ~docv:"MS" ~doc:"Deadline clamp applied to shed requests.")
  in
  let max_requests_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-requests" ] ~docv:"K"
          ~doc:"Exit after K optimize/explain responses (deterministic teardown for tests).")
  in
  let port_file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:"Write the bound port to FILE once listening (for --port 0 callers).")
  in
  let serve_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for the stochastic optimizer tiers.")
  in
  let run host port workers tenants_spec model cache_mb no_cache shed_queue shed_deadline_ms
      max_requests port_file seed =
    match Blitz_serve.Tenant.parse_spec tenants_spec with
    | Error msg -> `Error (false, msg)
    | Ok tenants -> (
      match
        Blitz_serve.Server.config ~host ~port ~workers ~tenants ~model
          ~cache:(Plan_cache.create ~max_bytes:(cache_mb * 1024 * 1024) ())
          ~shed_queue ~shed_deadline_ms ?max_requests ~seed ()
      with
      | exception Invalid_argument msg -> `Error (false, msg)
      | cfg -> (
        let cfg = if no_cache then { cfg with Blitz_serve.Server.cache = None } else cfg in
        match Blitz_serve.Server.start cfg with
        | exception Unix.Unix_error (err, _, _) ->
          `Error (false, Printf.sprintf "cannot listen on %s:%d: %s" host port (Unix.error_message err))
        | server ->
          let bound = Blitz_serve.Server.port server in
          (match port_file with
          | None -> ()
          | Some path ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (string_of_int bound ^ "\n")));
          Printf.printf "serving on %s:%d (%d worker(s), %d tenant(s))\n%!" host bound workers
            (List.length tenants + if List.exists (fun t -> t.Blitz_serve.Tenant.name = "default") tenants then 0 else 1);
          Blitz_serve.Server.wait server;
          `Ok ()))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the optimizer over newline-delimited JSON (methods: optimize, explain, stats, \
          health; GET /metrics on the same port answers Prometheus scrapes)")
    Term.(
      ret
        (const run $ host_arg $ port_arg $ workers_arg $ tenants_arg $ model_arg
       $ serve_cache_mb_arg $ serve_no_cache_arg $ shed_queue_arg $ shed_deadline_arg
       $ max_requests_arg $ port_file_arg $ serve_seed_arg))

let query_cmd =
  let port_arg =
    Arg.(
      required & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port to connect to.")
  in
  let run host port =
    match
      Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
    with
    | exception Unix.Unix_error (err, _, _) ->
      `Error (false, Printf.sprintf "cannot connect to %s:%d: %s" host port (Unix.error_message err))
    | ic, oc ->
      (* Closed loop: one request line out, one response line in — the
         shape the cram tests and quickstart examples rely on. *)
      let rec go () =
        match In_channel.input_line stdin with
        | None -> ()
        | Some line ->
          if String.trim line = "" then go ()
          else begin
            Out_channel.output_string oc (line ^ "\n");
            Out_channel.flush oc;
            (match In_channel.input_line ic with
            | Some resp -> print_endline resp
            | None | (exception Sys_error _) -> failwith "server closed the connection");
            go ()
          end
      in
      let result =
        match go () with
        | () -> `Ok ()
        | exception Failure msg -> `Error (false, msg)
        | exception Sys_error msg -> `Error (false, msg)
      in
      (try Unix.shutdown (Unix.descr_of_out_channel oc) Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      close_in_noerr ic;
      result
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Send newline-delimited JSON requests from standard input to a blitz server and print \
          each response")
    Term.(ret (const run $ host_arg $ port_arg))

let main_cmd =
  let doc = "bushy join-order optimization with Cartesian products (Vance & Maier, SIGMOD 1996)" in
  Cmd.group (Cmd.info "blitz" ~version:"1.0.0" ~doc)
    [
      optimize_cmd;
      explain_cmd;
      compare_cmd;
      workload_cmd;
      regret_cmd;
      counters_cmd;
      optimizers_cmd;
      serve_cmd;
      query_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
